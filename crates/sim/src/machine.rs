//! The whole-chip machine: 25 cores, the coherent memory system, and the
//! global cycle loop.
//!
//! [`Machine`] is the simulator's top level. Workloads are loaded onto
//! hardware threads, the machine is stepped for a number of cycles, and
//! the resulting [`ActivityCounters`] window is handed to the power
//! model.
//!
//! The cycle loop is *event-driven*: a per-core ready calendar (min-heap
//! over each core's `next_ready_at`) means only cores that can issue at
//! `now` — plus cores with store-buffer drains in flight — are stepped
//! each cycle; all other cores' per-cycle charges (`core_active_cycles`,
//! `mem_stall_cycles`) are accrued in bulk at cached rates, which are
//! constant over any window in which a core cannot issue. Cycles where
//! no core can issue are fast-forwarded in one jump. This generalizes
//! the old all-stalled-only fast-forward to the common partially-idle
//! case (e.g. the single-tile EPI tests, where 24 of 25 cores are idle)
//! while remaining counter-for-counter identical to the naive
//! step-everything engine, which is kept as [`Machine::run_naive`]
//! behind `cfg(any(test, feature = "naive-engine"))` and pinned by an
//! equivalence property test.
//!
//! The machine also exposes the chipset-side dummy-packet injector used
//! by the NoC energy study of §IV-G (Figure 12): the real experiment
//! modified the chipset FPGA logic to stream invalidation packets into
//! the chip through the chip bridge at tile0, producing seven valid NoC
//! flits every 47 cycles due to the bandwidth mismatch between the
//! 32-bit chip bridge and the 64-bit NoCs.
//!
//! # Examples
//!
//! ```
//! use piton_sim::machine::Machine;
//! use piton_sim::program::Program;
//! use piton_arch::isa::Instruction;
//! use piton_arch::config::ChipConfig;
//!
//! let mut m = Machine::new(&ChipConfig::default());
//! m.load_thread(0.into(), 0, Program::from_instructions(vec![
//!     Instruction::nop(),
//!     Instruction::halt(),
//! ]));
//! assert!(m.run_until_halted(1_000));
//! assert_eq!(m.counters().issues.iter().sum::<u64>(), 2);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use piton_arch::config::ChipConfig;
use piton_arch::error::PitonError;
use piton_arch::topology::TileId;
use piton_obs::metrics::{self, Histogram};
use piton_obs::trace::{self, EngineMode, TraceEvent};

use crate::core::{Core, IssueRecord, LocalCharges, WaitKind, PHANTOM_OP};
use crate::events::ActivityCounters;
use crate::memsys::MemorySystem;
use crate::noc::NocId;
use crate::program::Program;
use piton_arch::isa::Opcode;

/// How a watched run stopped making progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HangKind {
    /// No thread retired an instruction for a whole watchdog window
    /// while threads were still running.
    Stalled,
    /// Threads were still running (and possibly retiring) when the
    /// cycle budget ran out.
    Timeout,
}

/// One running-but-held thread named by a [`HangReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckThread {
    /// The tile whose core holds the thread.
    pub tile: TileId,
    /// Hardware thread index within the core.
    pub thread: usize,
    /// What the thread's occupancy is waiting on.
    pub wait: WaitKind,
    /// The cycle at which the occupancy releases.
    pub ready_at: u64,
}

/// Structured diagnosis of a machine that stopped making progress —
/// what [`Machine::run_until_halted_watched`] returns instead of a bare
/// `false`: which cores are stuck, on what [`WaitKind`], and how loaded
/// the store/memory path still is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangReport {
    /// How progress stopped.
    pub kind: HangKind,
    /// Cycle at which the watchdog fired.
    pub at_cycle: u64,
    /// The no-retirement window that triggered it (cycles).
    pub window: u64,
    /// Instructions retired chip-wide before the hang.
    pub retired: u64,
    /// Every running thread still held by an occupancy, in tile order.
    pub stuck: Vec<StuckThread>,
    /// Store-buffer entries still waiting to drain, chip-wide.
    pub pending_stores: u64,
    /// Fused-off cores (a degraded chip hangs differently).
    pub disabled_cores: usize,
    /// Clock the DVFS governor held when the watchdog fired (kHz), if a
    /// governor was driving the machine — a hang at a throttled
    /// frequency reads very differently from one at full speed.
    pub governed_khz: Option<u64>,
}

impl std::fmt::Display for HangReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            HangKind::Stalled => "no retirement",
            HangKind::Timeout => "cycle budget exhausted",
        };
        write!(
            f,
            "{kind} at cycle {} ({} retired, window {}, {} store(s) pending, {} core(s) disabled)",
            self.at_cycle, self.retired, self.window, self.pending_stores, self.disabled_cores
        )?;
        if let Some(khz) = self.governed_khz {
            write!(f, "; governor held {:.2} MHz", khz as f64 / 1_000.0)?;
        }
        for s in &self.stuck {
            let wait = match s.wait {
                WaitKind::Execute => "execute",
                WaitKind::Memory => "memory",
                WaitKind::StoreDrain => "store-drain",
            };
            write!(
                f,
                "; {} thread {} waiting on {wait} until cycle {}",
                s.tile, s.thread, s.ready_at
            )?;
        }
        Ok(())
    }
}

impl From<HangReport> for PitonError {
    fn from(r: HangReport) -> Self {
        PitonError::Hang {
            detail: r.to_string(),
        }
    }
}

/// Cycles between valid-flit groups on the chip bridge (§IV-G: "for
/// every 47 cycles there are seven valid NoC flits").
pub const BRIDGE_PATTERN_CYCLES: u64 = 47;
/// Valid flits per repeating bridge pattern (1 header + 6 payload).
pub const BRIDGE_PATTERN_FLITS: usize = 7;

/// Payload bit-switching pattern for NoC dummy packets (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchPattern {
    /// No switching: all payload bits zero.
    Nsw,
    /// Half switching: flits alternate `0x3333…` / zero.
    Hsw,
    /// Full switching: flits alternate all-ones / zero.
    Fsw,
    /// Full switching alternate: flits alternate `0xAAAA…` / `0x5555…`
    /// (coupling aggressors).
    Fswa,
}

impl SwitchPattern {
    /// All four patterns in the paper's legend order.
    pub const ALL: [SwitchPattern; 4] = [
        SwitchPattern::Nsw,
        SwitchPattern::Hsw,
        SwitchPattern::Fsw,
        SwitchPattern::Fswa,
    ];

    /// The label used in Figure 12.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SwitchPattern::Nsw => "NSW",
            SwitchPattern::Hsw => "HSW",
            SwitchPattern::Fsw => "FSW",
            SwitchPattern::Fswa => "FSWA",
        }
    }

    /// The two alternating payload flit values.
    #[must_use]
    pub fn flit_pair(self) -> (u64, u64) {
        match self {
            SwitchPattern::Nsw => (0, 0),
            SwitchPattern::Hsw => (0x3333_3333_3333_3333, 0),
            SwitchPattern::Fsw => (u64::MAX, 0),
            SwitchPattern::Fswa => (0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555),
        }
    }
}

/// Cached per-core scheduling state for the event-driven engine: the
/// charge profile of a core over a window in which it does not issue.
///
/// `Core::step` charges a running core one `core_active_cycles` and one
/// `mem_stall_cycles` per memory-waiting thread every cycle. Between a
/// core's issues, its thread states are frozen (every running thread has
/// `busy_until` beyond the window), so both rates are constants that can
/// be accrued in bulk without stepping the core.
#[derive(Debug, Clone, Copy)]
struct CoreSched {
    /// Earliest cycle a thread of this core can issue (`None`: no
    /// running thread).
    ready_at: Option<u64>,
    /// 1 if any thread is running (the per-cycle active charge).
    active: u64,
    /// Running threads held by a memory-system wait (the per-cycle
    /// memory-stall charge).
    mem_wait: u64,
}

impl CoreSched {
    /// Snapshots a core's charge profile just after it was stepped at
    /// `now` (or at engine start). `skew` delays the cached wakeup time
    /// — zero in production; the test-only desync knob
    /// ([`Machine::set_calendar_skew`]) uses it to fault-inject the
    /// scheduler for the trace differential harness.
    fn of(core: &Core, now: u64, skew: u64) -> Self {
        Self {
            ready_at: core.next_ready_at().map(|t| t.saturating_add(skew)),
            active: u64::from(core.any_running()),
            mem_wait: core.memory_waiting_threads(now),
        }
    }
}

/// Cycle-engine diagnostics: scheduler-internal tallies that are *not*
/// part of [`ActivityCounters`] (they describe how the engine ran, not
/// what the chip did). Exposed via [`Machine::engine_metrics`] and
/// published to the `piton-obs` metrics registry by
/// [`Machine::publish_metrics`] (called on drop, so `reproduce` sweeps
/// aggregate them without every experiment knowing about metrics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineMetrics {
    /// Total `Core::step` calls (same value as [`Machine::engine_steps`]).
    pub steps: u64,
    /// Ready-calendar heap pops, including stale (lazily-deleted) ones.
    pub calendar_pops: u64,
    /// Pops whose entry no longer matched the core's cached ready time.
    pub calendar_stale_pops: u64,
    /// Cycles driven by the event-driven calendar mode.
    pub event_cycles: u64,
    /// Cycles driven by the dense polling mode.
    pub dense_cycles: u64,
    /// Cycles driven by the batched (phase-A/phase-B) dense mode.
    pub batched_cycles: u64,
    /// Batches executed by the batched dense mode (each ends in one
    /// effect-replay barrier).
    pub batches: u64,
    /// High-water mark of deferred issues buffered by any one lane in
    /// any batch — the effect-buffer depth phase B replays at the
    /// barrier.
    pub record_hwm: u64,
    /// Cycles driven by the reference naive engine.
    pub naive_cycles: u64,
    /// Mode handovers (calendar ↔ dense) within `run` calls.
    pub handovers: u64,
    /// Histogram of cores issuing per serviced cycle (recorded only
    /// while the metrics registry is enabled).
    pub issue_duty: Histogram,
}

/// Per-counter watermarks so [`Machine::publish_metrics`] publishes
/// deltas: safe to call repeatedly (and from `Drop`) without double
/// counting.
#[derive(Debug, Clone, Copy, Default)]
struct PublishedMarks {
    steps: u64,
    calendar_pops: u64,
    calendar_stale_pops: u64,
    event_cycles: u64,
    dense_cycles: u64,
    batched_cycles: u64,
    batches: u64,
    naive_cycles: u64,
    handovers: u64,
}

/// Batch length of the batched dense engine, in cycles: long enough to
/// amortize the per-batch lane setup and the phase-A thread-scope
/// spawn, short enough that a core whose store buffer empties (or that
/// halts) re-enters the fast local path at the next barrier.
const DENSE_BATCH_CYCLES: u64 = 4_096;

/// Reusable per-lane state of the batched dense engine: phase A's
/// output (the lane's *effect buffer* of deferred issues plus its
/// order-free charge aggregates) and phase B's replay cursor. Kept on
/// the machine so the batch loop does not reallocate.
#[derive(Debug, Clone, Default)]
struct LaneBuf {
    /// First cycle phase A could not cover locally (== the batch start
    /// for lanes that must be stepped from the outset).
    horizon: u64,
    /// Next unreplayed record (phase B).
    cursor: usize,
    /// Deferred issues of the local span, in cycle order.
    records: Vec<IssueRecord>,
    /// Order-free charges of the local span.
    charges: LocalCharges,
}

/// Phase-A worker threads from `PITON_DENSE_THREADS` (default 1).
fn dense_threads_from_env() -> usize {
    std::env::var("PITON_DENSE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// The simulated Piton chip.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: ChipConfig,
    cores: Vec<Core>,
    memsys: MemorySystem,
    act: ActivityCounters,
    now: u64,
    /// Total `Core::step` calls made by the engine — a scheduler
    /// diagnostic (not part of [`ActivityCounters`]): the event-driven
    /// engine's value stays proportional to *busy* core-cycles, where
    /// the naive engine's grows with `cores × cycles`. Promoted into
    /// the metrics registry (as `engine.steps`) by
    /// [`Machine::publish_metrics`].
    engine_steps: u64,
    /// Scheduler diagnostics beyond the step count.
    emetrics: EngineMetrics,
    /// Publish watermarks (see [`Machine::publish_metrics`]).
    published: PublishedMarks,
    /// Test-only scheduler fault: delays every ready-calendar wakeup by
    /// this many cycles. Zero in production.
    calendar_skew: u64,
    /// Worker threads for the batched dense engine's phase A (see
    /// [`Machine::set_dense_threads`]).
    dense_threads: usize,
    /// Per-lane scratch buffers of the batched dense engine.
    lane_scratch: Vec<LaneBuf>,
    /// Clock the DVFS governor currently holds (kHz), when one is
    /// driving this machine. Set by the board layer's governed run
    /// loop; surfaced in [`HangReport`] so a watchdog firing at a
    /// throttled frequency is diagnosable.
    governed_khz: Option<u64>,
}

impl Machine {
    /// Builds an idle machine from a chip configuration.
    #[must_use]
    pub fn new(cfg: &ChipConfig) -> Self {
        let cores = cfg
            .topology()
            .tiles()
            .map(|t| {
                Core::new(
                    t,
                    cfg.threads_per_core as usize,
                    cfg.store_buffer_entries as usize,
                )
            })
            .collect();
        Self {
            cfg: cfg.clone(),
            cores,
            memsys: MemorySystem::new(cfg),
            act: ActivityCounters::new(),
            now: 0,
            engine_steps: 0,
            emetrics: EngineMetrics::default(),
            published: PublishedMarks::default(),
            calendar_skew: 0,
            dense_threads: dense_threads_from_env(),
            lane_scratch: Vec::new(),
            governed_khz: None,
        }
    }

    /// Sets the worker-thread count for the batched dense engine's
    /// phase A (the local lane run-ahead). Defaults to the
    /// `PITON_DENSE_THREADS` environment variable, else 1 (fully
    /// serial, no thread scope spawned).
    ///
    /// Any setting produces bit-identical results: phase A writes only
    /// disjoint per-lane buffers and never touches the shared memory
    /// system, and phase B replays the buffers sequentially in
    /// ascending core order at the batch barrier.
    pub fn set_dense_threads(&mut self, threads: usize) {
        self.dense_threads = threads.max(1);
    }

    /// The batched dense engine's phase-A worker-thread count.
    #[must_use]
    pub fn dense_threads(&self) -> usize {
        self.dense_threads
    }

    /// Records the clock a DVFS governor is holding (kHz), or `None`
    /// when ungoverned. Purely diagnostic — it does not alter timing.
    pub fn set_governed_khz(&mut self, khz: Option<u64>) {
        self.governed_khz = khz;
    }

    /// The clock the governor currently holds, if any (kHz).
    #[must_use]
    pub fn governed_khz(&self) -> Option<u64> {
        self.governed_khz
    }

    /// The chip configuration.
    #[must_use]
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Cumulative activity counters.
    #[must_use]
    pub fn counters(&self) -> &ActivityCounters {
        &self.act
    }

    /// The memory system (for test inspection and data poking).
    #[must_use]
    pub fn memsys(&self) -> &MemorySystem {
        &self.memsys
    }

    /// Mutable memory-system access (program loaders, experiments).
    pub fn memsys_mut(&mut self) -> &mut MemorySystem {
        &mut self.memsys
    }

    /// A core by tile (test inspection).
    #[must_use]
    pub fn core(&self, tile: TileId) -> &Core {
        &self.cores[tile.index()]
    }

    /// Loads a program onto a hardware thread, writing its data image to
    /// memory first.
    pub fn load_thread(&mut self, tile: TileId, thread: usize, program: Program) {
        self.load_thread_shared(tile, thread, &Arc::new(program));
    }

    /// Loads an already-shared program onto a hardware thread, writing
    /// its data image to memory first.
    pub fn load_thread_shared(&mut self, tile: TileId, thread: usize, program: &Arc<Program>) {
        for &(addr, value) in &program.data {
            self.memsys.poke(addr, value);
        }
        self.cores[tile.index()].load_thread(thread, Arc::clone(program));
    }

    /// Loads the same program onto thread `thread` of every one of the
    /// first `n` tiles (the paper's 25-core EPI tests). All tiles share
    /// one `Arc` of the program, and the data image is written once.
    pub fn load_on_tiles(&mut self, n: usize, thread: usize, program: &Program) {
        for &(addr, value) in &program.data {
            self.memsys.poke(addr, value);
        }
        let shared = Arc::new(program.clone());
        for i in 0..n {
            self.cores[i].load_thread(thread, Arc::clone(&shared));
        }
    }

    /// Fuses cores on or off from a mask (bit *i* = tile *i* disabled);
    /// routers keep forwarding, matching how the paper ran chips with
    /// faulty cores as 24-core parts. Bits outside the mask re-enable
    /// their cores, so applying a mask is idempotent and reversible.
    pub fn apply_core_mask(&mut self, mask: u32) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.set_enabled(mask & (1 << i) == 0);
        }
    }

    /// Fuses a single core on or off.
    pub fn set_core_enabled(&mut self, tile: TileId, enabled: bool) {
        self.cores[tile.index()].set_enabled(enabled);
    }

    /// Number of fused-off cores.
    #[must_use]
    pub fn disabled_cores(&self) -> usize {
        self.cores.iter().filter(|c| !c.is_enabled()).count()
    }

    /// Whether any hardware thread is still running.
    #[must_use]
    pub fn any_running(&self) -> bool {
        self.cores.iter().any(Core::any_running)
    }

    /// Total instructions retired across the chip.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.cores.iter().map(Core::retired).sum()
    }

    /// Runs for `cycles` cycles (the clock always ticks; idle cycles are
    /// fast-forwarded but still counted, as the clock tree still burns
    /// idle power).
    ///
    /// Event-driven: each cycle, only cores that can issue (tracked in a
    /// ready calendar) or that have store-buffer drains in flight are
    /// stepped, in core order — the same order the naive engine sweeps
    /// them — so every memory-system and NoC mutation happens in the
    /// exact same global sequence and all counters (including the
    /// order-dependent NoC bit-switch Hamming chains) match
    /// [`Machine::run_naive`] exactly. Skipped cores accrue their
    /// active/memory-stall charges in bulk at cached rates, which are
    /// constant while a core cannot issue.
    ///
    /// Scheduler state is rebuilt per call: between calls, callers may
    /// reload threads or mutate the memory system.
    ///
    /// When issue duty is high — most live cores issuing most cycles,
    /// as in the lockstep 25-tile EPI tests — the calendar is pure
    /// overhead, so the engine drops into a dense polling mode: the
    /// naive sweep restricted to cores that can do anything at all
    /// (running threads or store drains in flight; the naive engine's
    /// steps of the others are observable no-ops). Either mode is
    /// exact, so switching between them at any cycle boundary is too.
    pub fn run(&mut self, cycles: u64) {
        let end = self.now + cycles;
        if cycles == 0 {
            return;
        }
        loop {
            if trace::active() {
                trace::emit(TraceEvent::Engine {
                    cycle: self.now,
                    mode: EngineMode::Calendar,
                });
            }
            let entered = self.now;
            let done = self.run_event(end);
            self.emetrics.event_cycles += self.now - entered;
            if done {
                return;
            }
            self.emetrics.handovers += 1;
            // Traced runs use the scalar dense sweep: deferred local
            // execution emits no per-cycle trace events, so live event
            // order is only preserved by stepping every cycle in place.
            // Untraced runs (every production sweep) take the batched
            // engine; both are counter-exact, so the choice is
            // invisible outside the engine diagnostics.
            let traced = trace::active();
            if traced {
                trace::emit(TraceEvent::Engine {
                    cycle: self.now,
                    mode: EngineMode::Dense,
                });
            }
            let entered = self.now;
            let done = if traced {
                self.run_dense(end)
            } else {
                self.run_dense_batched(end)
            };
            if traced {
                self.emetrics.dense_cycles += self.now - entered;
            } else {
                self.emetrics.batched_cycles += self.now - entered;
            }
            if done {
                return;
            }
            self.emetrics.handovers += 1;
        }
    }

    /// Event-driven scheduling until `end` (returns `true`) or until
    /// issue duty is high enough that dense polling is cheaper (returns
    /// `false`).
    #[allow(clippy::too_many_lines)]
    fn run_event(&mut self, end: u64) -> bool {
        // Per-core charge cache and chip-wide per-cycle rate totals.
        let skew = self.calendar_skew;
        let mut sched: Vec<CoreSched> = self
            .cores
            .iter()
            .map(|c| CoreSched::of(c, self.now, skew))
            .collect();
        let mut total_active: u64 = sched.iter().map(|s| s.active).sum();
        let mut total_mem: u64 = sched.iter().map(|s| s.mem_wait).sum();
        // Cores that can still issue at all, and how many consecutive
        // cycles a majority of them issued (the dense-mode trigger).
        let mut live: usize = sched.iter().filter(|s| s.ready_at.is_some()).count();
        let mut high_duty_streak: u32 = 0;

        // Ready calendar. Lazy deletion: an entry is live iff it matches
        // the core's current cached `ready_at`; each core has exactly one
        // live entry (or none), stale ones are dropped when inspected.
        let mut calendar: BinaryHeap<Reverse<(u64, usize)>> = sched
            .iter()
            .enumerate()
            .filter_map(|(k, s)| s.ready_at.map(|t| Reverse((t, k))))
            .collect();

        // Cores with store-buffer entries still draining: they must be
        // stepped every cycle even when no thread can issue, so their
        // background drains hit the memory system at the same cycles —
        // and in the same core order — as under the naive engine.
        let mut draining: Vec<usize> = (0..self.cores.len())
            .filter(|&k| self.cores[k].has_pending_stores())
            .collect();

        let mut ready: Vec<usize> = Vec::with_capacity(self.cores.len());
        let mut serviced: Vec<usize> = Vec::with_capacity(self.cores.len());

        while self.now < end {
            if trace::active() {
                trace::set_cycle(self.now);
            }
            // Earliest live calendar entry.
            let next_ready = loop {
                match calendar.peek() {
                    None => break None,
                    Some(&Reverse((t, k))) => {
                        if sched[k].ready_at == Some(t) {
                            break Some(t);
                        }
                        calendar.pop();
                        self.emetrics.calendar_pops += 1;
                        self.emetrics.calendar_stale_pops += 1;
                    }
                }
            };

            // Cores that can issue this cycle (consuming their entries).
            ready.clear();
            if next_ready.is_some_and(|t| t <= self.now) {
                while let Some(&Reverse((t, k))) = calendar.peek() {
                    if t > self.now {
                        break;
                    }
                    calendar.pop();
                    self.emetrics.calendar_pops += 1;
                    if sched[k].ready_at == Some(t) {
                        ready.push(k);
                    } else {
                        self.emetrics.calendar_stale_pops += 1;
                    }
                }
                ready.sort_unstable();
            }

            serviced.clear();
            serviced.extend_from_slice(&ready);
            serviced.extend(draining.iter().copied());
            serviced.sort_unstable();
            serviced.dedup();

            // Bulk-charge every core we skip at its cached rates;
            // serviced cores charge themselves inside `step`.
            let mut sub_active = 0;
            let mut sub_mem = 0;
            for &k in &serviced {
                sub_active += sched[k].active;
                sub_mem += sched[k].mem_wait;
            }
            self.act.core_active_cycles += total_active - sub_active;
            self.act.mem_stall_cycles += total_mem - sub_mem;

            let mut issued: u64 = 0;
            for &k in &serviced {
                issued += u64::from(self.cores[k].step(self.now, &mut self.memsys, &mut self.act));
                self.engine_steps += 1;
                let old = sched[k];
                let new = CoreSched::of(&self.cores[k], self.now, skew);
                total_active = total_active - old.active + new.active;
                total_mem = total_mem - old.mem_wait + new.mem_wait;
                live = live - usize::from(old.ready_at.is_some())
                    + usize::from(new.ready_at.is_some());
                sched[k] = new;
                // Keep the one-live-entry calendar invariant: push when
                // the ready time changed (the old entry, if any, went
                // stale) or when this core's entry was consumed into
                // `ready` this cycle.
                if let Some(t) = new.ready_at {
                    if new.ready_at != old.ready_at || ready.binary_search(&k).is_ok() {
                        calendar.push(Reverse((t, k)));
                    }
                }
            }
            if !serviced.is_empty() {
                // Drain-set membership only changes when a core steps
                // (stores enqueue on issue, drains retire in `advance`).
                draining.retain(|&k| self.cores[k].has_pending_stores());
                for &k in &serviced {
                    if self.cores[k].has_pending_stores() && !draining.contains(&k) {
                        draining.push(k);
                    }
                }
                draining.sort_unstable();
            }
            if issued > 0 && metrics::enabled() {
                self.emetrics.issue_duty.observe(issued);
            }

            self.act.cycles += 1;
            self.now += 1;

            if !serviced.is_empty() {
                // Duty tracking. High duty — a majority of the cores
                // that can issue at all stepped this cycle — means the
                // calendar is buying little; two such busy cycles hand
                // over to dense polling (dead cycles between them are
                // duty-neutral: both modes fast-forward those, so e.g.
                // lockstep issue/stall rhythms of long-latency tests
                // still count as saturated).
                if serviced.len() * 2 >= live {
                    high_duty_streak += 1;
                    if high_duty_streak >= 2 {
                        return false;
                    }
                } else {
                    high_duty_streak = 0;
                }
            }
            if ready.is_empty() {
                // Dead cycle: no thread is ready before `next_ready`, so
                // every running thread keeps its current wait for the
                // whole window — charge it in bulk at the cached rates
                // and jump (the naive engine's fast-forward, generalized;
                // in-flight drains are timestamp-based and land
                // unchanged).
                let next = next_ready.unwrap_or(end).min(end).max(self.now);
                if next > self.now {
                    let skipped = next - self.now;
                    self.act.cycles += skipped;
                    self.act.core_active_cycles += skipped * total_active;
                    self.act.mem_stall_cycles += skipped * total_mem;
                    self.now = next;
                }
            }
        }
        true
    }

    /// Dense polling until `end` (returns `true`) or until issue duty
    /// drops low enough that the event scheduler is worth its rebuild
    /// (returns `false`).
    ///
    /// The poll set is fixed at entry: every core with a running thread
    /// or store drains in flight, stepped in ascending core order every
    /// cycle — exactly the naive sweep minus cores whose steps would be
    /// observable no-ops (no thread can wake and no drain can land
    /// within one `run`), so charges, step order and counters are
    /// identical to [`Machine::run_naive`]. All-stall cycles use the
    /// naive fast-forward and stay dense: lockstep workloads (the
    /// 25-tile EPI sweeps) alternate all-issue and all-stall cycles,
    /// and bouncing to the event scheduler on each stall would rebuild
    /// the calendar every few cycles. Only a *sustained* low-duty
    /// stretch (mostly-idle polled cores) exits.
    fn run_dense(&mut self, end: u64) -> bool {
        let polled: Vec<usize> = (0..self.cores.len())
            .filter(|&k| self.cores[k].any_running() || self.cores[k].has_pending_stores())
            .collect();
        if polled.is_empty() {
            // Nothing can ever issue or drain: idle the clock out.
            self.act.cycles += end - self.now;
            self.now = end;
            return true;
        }
        let all = polled.len() == self.cores.len();
        let mut low_duty_streak: u32 = 0;
        while self.now < end {
            if trace::active() {
                trace::set_cycle(self.now);
            }
            let mut issued = 0;
            if all {
                for core in &mut self.cores {
                    issued += usize::from(core.step(self.now, &mut self.memsys, &mut self.act));
                }
            } else {
                for &k in &polled {
                    issued +=
                        usize::from(self.cores[k].step(self.now, &mut self.memsys, &mut self.act));
                }
            }
            self.engine_steps += polled.len() as u64;
            if issued > 0 && metrics::enabled() {
                self.emetrics.issue_duty.observe(issued as u64);
            }
            self.act.cycles += 1;
            self.now += 1;
            if issued == 0 {
                // The naive fast-forward: jump to the next cycle any
                // core can issue, bulk-charging the skipped window.
                // Unpolled cores have no running threads, so they
                // contribute neither a ready time nor any charge, and
                // the scan stays within the polled set.
                let next = polled
                    .iter()
                    .filter_map(|&k| self.cores[k].next_ready_at())
                    .min()
                    .unwrap_or(end)
                    .min(end)
                    .max(self.now);
                if next > self.now {
                    let skipped = next - self.now;
                    let running = polled
                        .iter()
                        .filter(|&&k| self.cores[k].any_running())
                        .count() as u64;
                    let memory_waiting: u64 = polled
                        .iter()
                        .map(|&k| self.cores[k].memory_waiting_threads(self.now))
                        .sum();
                    self.act.cycles += skipped;
                    self.act.core_active_cycles += skipped * running;
                    self.act.mem_stall_cycles += skipped * memory_waiting;
                    self.now = next;
                }
                continue;
            }
            if issued * 8 < polled.len() {
                low_duty_streak += 1;
                if low_duty_streak >= 16 {
                    return false;
                }
            } else {
                low_duty_streak = 0;
            }
        }
        true
    }

    /// Batched dense stepping until `end` (returns `true`) or until a
    /// whole batch's issue duty is low enough that the event scheduler
    /// is worth its rebuild (returns `false`). Counter-exact against
    /// [`Machine::run_naive`] and the scalar [`Machine::run_dense`];
    /// only the engine diagnostics can tell them apart.
    ///
    /// Each batch (at most [`DENSE_BATCH_CYCLES`]) runs in two phases
    /// over the polled lanes (cores with a running thread or drains in
    /// flight), re-derived every batch:
    ///
    /// * **Phase A** — every polled core whose store buffer is empty
    ///   runs ahead *locally* ([`Core::run_local`]): ALU/FP/branch
    ///   cycles touch nothing shared, so order-free integer charges
    ///   aggregate per lane and each issue's order-sensitive residue is
    ///   deferred into the lane's effect buffer. A lane stops at its
    ///   *horizon* — the first memory-system access. Phase A has no
    ///   effects outside its own lane, so lanes fan out across
    ///   [`Machine::set_dense_threads`] scoped workers (same-program
    ///   lanes grouped per worker via `Arc` pointer identity, keeping
    ///   the shared decode hot) with bit-identical results at any
    ///   thread count.
    /// * **Phase B** — the one sequential pass that owns the shared
    ///   memory system: cycles ascend, and within each cycle the lanes
    ///   are visited in ascending tile order — folding the lane's
    ///   deferred record before its horizon, taking a real
    ///   [`Core::step`] at and beyond it — which is exactly the naive
    ///   engine's global mutation sequence, so every NoC Hamming chain
    ///   and `f64` accumulation folds in the same order, bit for bit.
    ///   Zero-issue cycles fast-forward like the scalar modes: local
    ///   lanes contribute their next record's cycle (equal to their
    ///   hidden `next_ready_at`, since a ready local thread always
    ///   issues), stepped lanes their actual `next_ready_at`, and the
    ///   bulk charge covers stepped lanes only — local spans were
    ///   already charged by phase A at the same frozen rates.
    ///
    /// Re-deriving the poll set per batch is also the mode-hysteresis
    /// fix for degraded dies: a core that halts or is fused off leaves
    /// both the stepping loop and the issue-duty denominator at the
    /// next barrier, where the scalar sweep's entry-fixed poll set kept
    /// counting it and could ping-pong modes on a heavily-fused part.
    #[allow(clippy::too_many_lines)]
    fn run_dense_batched(&mut self, end: u64) -> bool {
        let mut scratch = std::mem::take(&mut self.lane_scratch);
        let mut reached_end = true;
        'batches: while self.now < end {
            let polled: Vec<usize> = (0..self.cores.len())
                .filter(|&k| self.cores[k].any_running() || self.cores[k].has_pending_stores())
                .collect();
            if polled.is_empty() {
                // Nothing can ever issue or drain: idle the clock out.
                self.act.cycles += end - self.now;
                self.now = end;
                break;
            }
            let start = self.now;
            let bend = (start + DENSE_BATCH_CYCLES).min(end);
            self.emetrics.batches += 1;
            if scratch.len() < polled.len() {
                scratch.resize_with(polled.len(), LaneBuf::default);
            }

            // Phase A: run store-buffer-empty lanes ahead locally.
            {
                let mut tasks: Vec<(&mut Core, &mut LaneBuf)> = Vec::with_capacity(polled.len());
                let mut cores = self.cores.iter_mut();
                let mut bufs = scratch.iter_mut();
                let mut consumed = 0usize;
                for &k in &polled {
                    let core = cores.nth(k - consumed).expect("polled index in range");
                    consumed = k + 1;
                    let buf = bufs.next().expect("scratch sized to polled");
                    buf.cursor = 0;
                    buf.records.clear();
                    buf.charges.clear();
                    if core.has_pending_stores() {
                        // In-flight drains: stepped for the whole batch.
                        buf.horizon = start;
                    } else {
                        tasks.push((core, buf));
                    }
                }
                let workers = self.dense_threads.min(tasks.len());
                if workers <= 1 {
                    for (core, buf) in &mut tasks {
                        buf.horizon =
                            core.run_local(start, bend, &mut buf.records, &mut buf.charges);
                    }
                } else {
                    // Group same-program lanes onto one worker so the
                    // shared decode stays hot per worker; lane outputs
                    // are disjoint, so placement cannot affect results.
                    tasks.sort_by_key(|(core, _)| core.program_identity());
                    let per = tasks.len().div_ceil(workers);
                    std::thread::scope(|s| {
                        for chunk in tasks.chunks_mut(per) {
                            s.spawn(move || {
                                for (core, buf) in chunk {
                                    buf.horizon = core.run_local(
                                        start,
                                        bend,
                                        &mut buf.records,
                                        &mut buf.charges,
                                    );
                                }
                            });
                        }
                    });
                }
            }
            for buf in &scratch[..polled.len()] {
                self.emetrics.record_hwm = self.emetrics.record_hwm.max(buf.records.len() as u64);
            }

            // Phase B: the sequential exact replay.
            let metrics_on = metrics::enabled();
            // When every lane covered the whole batch locally, the
            // replay is a pure record merge: no horizon checks, no core
            // access — just each lane's next record against the cycle.
            let all_local = scratch[..polled.len()].iter().all(|b| b.horizon == bend);
            let mut issued_total: u64 = 0;
            let mut processed: u64 = 0;
            let mut c = start;
            while c < bend {
                let mut issued: u64 = 0;
                #[allow(clippy::cast_possible_truncation)]
                let rel = (c - start) as u32;
                if all_local {
                    for buf in &mut scratch[..polled.len()] {
                        if let Some(r) = buf.records.get(buf.cursor) {
                            if r.offset == rel {
                                if r.op != PHANTOM_OP {
                                    self.act.operand_activity[r.op as usize] += r.activity;
                                }
                                issued += 1;
                                buf.cursor += 1;
                            }
                        }
                    }
                } else {
                    for (j, &k) in polled.iter().enumerate() {
                        let buf = &mut scratch[j];
                        if c < buf.horizon {
                            if let Some(r) = buf.records.get(buf.cursor) {
                                if r.offset == rel {
                                    if r.op != PHANTOM_OP {
                                        self.act.operand_activity[r.op as usize] += r.activity;
                                    }
                                    issued += 1;
                                    buf.cursor += 1;
                                }
                            }
                        } else {
                            issued +=
                                u64::from(self.cores[k].step(c, &mut self.memsys, &mut self.act));
                        }
                    }
                }
                self.engine_steps += polled.len() as u64;
                if issued > 0 && metrics_on {
                    self.emetrics.issue_duty.observe(issued);
                }
                issued_total += issued;
                processed += 1;
                c += 1;
                if issued == 0 && c < bend {
                    // The naive fast-forward, batched: local lanes'
                    // next event is their next deferred record (or
                    // their frozen wake time once the buffer is dry —
                    // provably at or beyond their horizon), stepped
                    // lanes' is their live `next_ready_at`. Charges
                    // cover stepped lanes only; phase A already charged
                    // the local spans at the same frozen rates.
                    let mut next = bend;
                    let mut running: u64 = 0;
                    let mut mem_waiting: u64 = 0;
                    for (j, &k) in polled.iter().enumerate() {
                        let buf = &scratch[j];
                        if c < buf.horizon {
                            if let Some(r) = buf.records.get(buf.cursor) {
                                next = next.min(start + u64::from(r.offset));
                            } else if let Some(t) = self.cores[k].next_ready_at() {
                                debug_assert!(t >= buf.horizon, "local lane wakes inside its span");
                                next = next.min(t);
                            }
                        } else {
                            running += u64::from(self.cores[k].any_running());
                            mem_waiting += self.cores[k].memory_waiting_threads(c);
                            if let Some(t) = self.cores[k].next_ready_at() {
                                next = next.min(t);
                            }
                        }
                    }
                    let next = next.max(c);
                    if next > c {
                        let skipped = next - c;
                        self.act.cycles += skipped;
                        self.act.core_active_cycles += skipped * running;
                        self.act.mem_stall_cycles += skipped * mem_waiting;
                        c = next;
                    }
                }
            }
            self.act.cycles += processed;
            self.now = c;

            // The barrier: fold the order-free phase-A aggregates (all
            // exact integers, so fold order is free) and verify every
            // effect buffer replayed to exhaustion.
            for buf in &scratch[..polled.len()] {
                debug_assert_eq!(buf.cursor, buf.records.len(), "unreplayed issue records");
                let ch = &buf.charges;
                self.act.core_active_cycles += ch.active;
                self.act.mem_stall_cycles += ch.mem_stall;
                self.act.dual_thread_cycles += ch.dual;
                self.act.drafted_issues += ch.drafted;
                self.act.l1i_accesses += ch.l1i;
                self.act.sb_enqueues += ch.sb_enqueues;
                for i in 0..Opcode::COUNT {
                    self.act.issues[i] += ch.issues[i];
                    self.act.occupancy_cycles[i] += ch.occupancy[i];
                }
            }

            // Whole-batch duty check against the freshly-derived lane
            // count: sustained low duty hands back to the calendar.
            if issued_total * 8 < polled.len() as u64 * processed && self.now < end {
                reached_end = false;
                break 'batches;
            }
        }
        self.lane_scratch = scratch;
        reached_end
    }

    /// The seed engine: polls every core every cycle, fast-forwarding
    /// only when *no* core can issue. Kept as the reference
    /// implementation the event-driven [`Machine::run`] is equivalence-
    /// tested against (and for `--features naive-engine` benchmarking);
    /// both produce identical counters, cycle for cycle.
    #[cfg(any(test, feature = "naive-engine"))]
    pub fn run_naive(&mut self, cycles: u64) {
        let end = self.now + cycles;
        self.emetrics.naive_cycles += cycles;
        if trace::active() {
            trace::emit(TraceEvent::Engine {
                cycle: self.now,
                mode: EngineMode::Naive,
            });
        }
        while self.now < end {
            if trace::active() {
                trace::set_cycle(self.now);
            }
            let mut issued_any = false;
            for core in &mut self.cores {
                issued_any |= core.step(self.now, &mut self.memsys, &mut self.act);
            }
            self.engine_steps += self.cores.len() as u64;
            self.act.cycles += 1;
            self.now += 1;
            if issued_any {
                continue;
            }
            // Fast-forward to the next cycle any core can issue.
            let next = self
                .cores
                .iter()
                .filter_map(Core::next_ready_at)
                .min()
                .unwrap_or(end)
                .min(end)
                .max(self.now);
            if next > self.now {
                let skipped = next - self.now;
                let running = self.cores.iter().filter(|c| c.any_running()).count() as u64;
                // No thread is ready before `next`, so every running
                // thread keeps its current wait for the whole window:
                // active cycles accrue per running core, memory stalls
                // only per thread actually waiting on the memory system
                // (matching Core::step's per-cycle charging).
                let memory_waiting: u64 = self
                    .cores
                    .iter()
                    .map(|c| c.memory_waiting_threads(self.now))
                    .sum();
                self.act.cycles += skipped;
                self.act.core_active_cycles += skipped * running;
                self.act.mem_stall_cycles += skipped * memory_waiting;
                self.now = next;
            }
        }
    }

    /// Total `Core::step` calls made so far (scheduler diagnostics).
    #[must_use]
    pub fn engine_steps(&self) -> u64 {
        self.engine_steps
    }

    /// Cycle-engine diagnostics: calendar pops, per-mode cycle counts,
    /// handovers and the issue-duty histogram (histogram recorded only
    /// while the metrics registry is enabled).
    #[must_use]
    pub fn engine_metrics(&self) -> EngineMetrics {
        EngineMetrics {
            steps: self.engine_steps,
            ..self.emetrics.clone()
        }
    }

    /// Publishes this machine's engine diagnostics into the `piton-obs`
    /// metrics registry under `prefix` (counters `<prefix>.steps`,
    /// `<prefix>.calendar_pops`, … and histogram `<prefix>.issue_duty`).
    ///
    /// Delta-published against per-machine watermarks, so repeated
    /// calls (and the automatic call on drop) never double count. No-op
    /// while the registry is disabled.
    pub fn publish_metrics_as(&mut self, prefix: &str) {
        if !metrics::enabled() {
            return;
        }
        let publish = |name: &str, cur: u64, mark: &mut u64| {
            let delta = cur - *mark;
            *mark = cur;
            if delta > 0 {
                metrics::counter_add(&format!("{prefix}.{name}"), delta);
            }
        };
        let m = &self.emetrics;
        let w = &mut self.published;
        publish("steps", self.engine_steps, &mut w.steps);
        publish("calendar_pops", m.calendar_pops, &mut w.calendar_pops);
        publish(
            "calendar_stale_pops",
            m.calendar_stale_pops,
            &mut w.calendar_stale_pops,
        );
        publish("event_cycles", m.event_cycles, &mut w.event_cycles);
        publish("dense_cycles", m.dense_cycles, &mut w.dense_cycles);
        publish("batched_cycles", m.batched_cycles, &mut w.batched_cycles);
        publish("batches", m.batches, &mut w.batches);
        publish("naive_cycles", m.naive_cycles, &mut w.naive_cycles);
        publish("handovers", m.handovers, &mut w.handovers);
        if m.record_hwm > 0 {
            // A watermark, not a flow: last-write-wins gauge (the
            // registry keeps whichever machine published last; sweeps
            // over homogeneous machines see a representative depth).
            metrics::gauge_set(&format!("{prefix}.record_hwm"), m.record_hwm as f64);
        }
        let duty = std::mem::take(&mut self.emetrics.issue_duty);
        if duty.count > 0 {
            metrics::histogram_merge(&format!("{prefix}.issue_duty"), &duty);
        }
    }

    /// [`Machine::publish_metrics_as`] under the standard `engine`
    /// prefix.
    pub fn publish_metrics(&mut self) {
        self.publish_metrics_as("engine");
    }

    /// Test-only scheduler fault injection: delays every ready-calendar
    /// wakeup by `skew` cycles, desynchronizing the event-driven engine
    /// from [`Machine::run_naive`] without touching the naive path —
    /// the deliberate divergence the `trace_diff` harness must localize.
    /// Zero restores exact equivalence.
    #[doc(hidden)]
    pub fn set_calendar_skew(&mut self, skew: u64) {
        self.calendar_skew = skew;
    }

    /// Runs until every thread halts or `max_cycles` elapse. Returns
    /// `true` if everything halted. The chunk granularity between halt
    /// checks follows `PITON_WATCHDOG_CHUNK` (see [`crate::watchdog`]):
    /// retirement is unaffected, but the clock coasts to the next chunk
    /// boundary after the last thread halts, so smaller chunks stop the
    /// clock closer to the true halt cycle.
    pub fn run_until_halted(&mut self, max_cycles: u64) -> bool {
        let step = crate::watchdog::chunk_cycles();
        let end = self.now + max_cycles;
        while self.any_running() && self.now < end {
            let chunk = step.min(end - self.now);
            self.run(chunk);
        }
        !self.any_running()
    }

    /// [`Machine::run_until_halted`] with a progress watchdog: if no
    /// instruction retires chip-wide for `window` consecutive cycles
    /// while threads are still running, or the cycle budget runs out,
    /// returns a structured [`HangReport`] naming the stuck threads
    /// (tile, [`WaitKind`], release cycle) and the residual store-path
    /// occupancy, instead of a bare `false`.
    ///
    /// Pick `window` above the longest legitimate wait of the workload
    /// (a cold memory miss holds a thread ~424 cycles);
    /// [`Machine::run_until_halted_guarded`] supplies the
    /// environment-tunable default. The chunk granularity between
    /// progress checks follows `PITON_WATCHDOG_CHUNK` (see
    /// [`crate::watchdog`]): retirement is unaffected, but the clock
    /// coasts to the next chunk boundary after the last thread halts.
    /// The loop also polls the runner's per-attempt
    /// deadline budget (`piton_arch::deadline`), reporting a timeout
    /// hang when the budget is blown so a wedged grid point degrades
    /// into a retry or a hole.
    ///
    /// # Errors
    ///
    /// [`HangReport`] when the watchdog fires or the budget is
    /// exhausted with threads still running.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn run_until_halted_watched(
        &mut self,
        max_cycles: u64,
        window: u64,
    ) -> Result<(), HangReport> {
        assert!(window > 0, "watchdog window must be non-zero");
        let step = crate::watchdog::chunk_cycles();
        let end = self.now + max_cycles;
        let mut last_retired = self.retired();
        let mut progress_at = self.now;
        while self.any_running() && self.now < end {
            if piton_arch::deadline::exceeded() {
                return Err(self.hang_report(HangKind::Timeout, window));
            }
            let chunk = step.min(window).min(end - self.now);
            self.run(chunk);
            let retired = self.retired();
            if retired > last_retired {
                last_retired = retired;
                progress_at = self.now;
            } else if self.now - progress_at >= window {
                return Err(self.hang_report(HangKind::Stalled, window));
            }
        }
        if self.any_running() {
            return Err(self.hang_report(HangKind::Timeout, window));
        }
        Ok(())
    }

    /// [`Machine::run_until_halted_watched`] with the environment's
    /// default hang window (`PITON_WATCHDOG_LIMIT`, see
    /// [`crate::watchdog::limit_cycles`]).
    ///
    /// # Errors
    ///
    /// [`HangReport`] when the watchdog fires or the budget is
    /// exhausted with threads still running.
    pub fn run_until_halted_guarded(&mut self, max_cycles: u64) -> Result<(), HangReport> {
        self.run_until_halted_watched(max_cycles, crate::watchdog::limit_cycles())
    }

    /// Snapshots the stuck state for a [`HangReport`].
    fn hang_report(&self, kind: HangKind, window: u64) -> HangReport {
        let stuck = self
            .cores
            .iter()
            .flat_map(|c| {
                c.waiting_threads(self.now)
                    .into_iter()
                    .map(|(thread, wait, ready_at)| StuckThread {
                        tile: c.tile(),
                        thread,
                        wait,
                        ready_at,
                    })
            })
            .collect();
        HangReport {
            kind,
            at_cycle: self.now,
            window,
            retired: self.retired(),
            stuck,
            pending_stores: self.cores.iter().map(|c| c.pending_stores() as u64).sum(),
            disabled_cores: self.disabled_cores(),
            governed_khz: self.governed_khz,
        }
    }

    /// Records I/O transactions (SD card, serial port) crossing the
    /// chip bridge — driven by workload models whose I/O the ISA-level
    /// simulator does not execute (e.g. the SPECint surrogates with
    /// high file activity, §IV-I).
    pub fn record_io(&mut self, transactions: u64) {
        self.act.io_transactions += transactions;
        // Each transaction crosses the pin-limited bridge as a burst.
        self.act.chip_bridge_flits += transactions * 20;
    }

    /// Drives the chipset-side NoC dummy-packet traffic of the Figure 12
    /// experiment for `cycles` cycles: every 47 cycles, one packet of one
    /// header flit plus six payload flits (alternating per `pattern`)
    /// enters through the chip bridge at tile0 and routes to `dst` on
    /// NoC2, where the L1.5 receives it as an invalidation.
    pub fn run_invalidation_traffic(&mut self, dst: TileId, pattern: SwitchPattern, cycles: u64) {
        let end = self.now + cycles;
        let (even, odd) = pattern.flit_pair();
        let entry = TileId::new(0);
        // One reusable flit buffer and one precomputed route for the
        // whole run; the header (the destination route) is constant,
        // only the payload toggles.
        let mut flits = [0u64; BRIDGE_PATTERN_FLITS];
        flits[0] = dst.index() as u64;
        let plan = self.memsys.noc.plan(NocId::Noc2, entry, dst);
        let mut flit_toggle = false;
        while self.now < end {
            if trace::active() {
                trace::set_cycle(self.now);
            }
            for slot in &mut flits[1..] {
                *slot = if flit_toggle { odd } else { even };
                flit_toggle = !flit_toggle;
            }
            self.act.chip_bridge_flits += BRIDGE_PATTERN_FLITS as u64;
            self.memsys.noc.send_planned(&plan, &flits, &mut self.act);
            // Receipt at the destination L1.5.
            self.act.invalidations += 1;
            self.act.l15_reads += 1;

            let step = BRIDGE_PATTERN_CYCLES.min(end - self.now);
            self.act.cycles += step;
            self.now += step;
        }
    }
}

impl Drop for Machine {
    /// Publishes any unpublished engine diagnostics so sweeps aggregate
    /// scheduler behavior without each experiment calling
    /// [`Machine::publish_metrics`] — a no-op (one relaxed load) unless
    /// the metrics registry is enabled.
    fn drop(&mut self) {
        self.publish_metrics();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piton_arch::isa::{Instruction, Opcode, Reg};

    fn machine() -> Machine {
        Machine::new(&ChipConfig::piton())
    }

    fn count_loop(iters: i64) -> Program {
        Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), iters),
            Instruction::movi(Reg::new(2), 1),
            Instruction::alu(Opcode::Sub, Reg::new(1), Reg::new(1), Reg::new(2)),
            Instruction::branch(Opcode::Bne, Reg::new(1), Reg::G0, 2),
            Instruction::halt(),
        ])
    }

    #[test]
    fn runs_a_program_to_halt() {
        let mut m = machine();
        m.load_thread(TileId::new(0), 0, count_loop(10));
        assert!(m.run_until_halted(10_000));
        assert!(m.retired() > 20);
    }

    #[test]
    fn twenty_five_cores_run_in_parallel() {
        let mut m = machine();
        let p = count_loop(100);
        m.load_on_tiles(25, 0, &p);
        assert!(m.run_until_halted(100_000));
        // All 25 retire the same instruction count.
        let per_core = m.core(TileId::new(0)).retired();
        for t in m.config().topology().tiles() {
            assert_eq!(m.core(t).retired(), per_core, "{t}");
        }
    }

    #[test]
    fn clock_keeps_counting_when_idle() {
        let mut m = machine();
        m.run(500);
        assert_eq!(m.counters().cycles, 500);
        assert_eq!(m.now(), 500);
        assert_eq!(m.counters().total_issues(), 0);
    }

    #[test]
    fn fast_forward_preserves_cycle_accounting() {
        let mut m = machine();
        // A single thread that stalls on a cold memory miss: the machine
        // fast-forwards ~424 cycles but must still count them.
        m.load_thread(
            TileId::new(0),
            0,
            Program::from_instructions(vec![
                Instruction::movi(Reg::new(1), 0x9000),
                Instruction::ldx(Reg::new(2), Reg::new(1), 0),
                Instruction::halt(),
            ]),
        );
        assert!(m.run_until_halted(5_000));
        assert!(m.counters().cycles >= 424);
    }

    #[test]
    fn data_image_is_loaded_before_start() {
        let mut m = machine();
        let mut p = Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), 0x8000),
            Instruction::ldx(Reg::new(2), Reg::new(1), 0),
            Instruction::halt(),
        ]);
        p.data.push((0x8000, 777));
        m.load_thread(TileId::new(3), 0, p);
        assert!(m.run_until_halted(5_000));
        assert_eq!(m.core(TileId::new(3)).reg(0, Reg::new(2)), 777);
    }

    #[test]
    fn invalidation_traffic_produces_bridge_pattern() {
        let mut m = machine();
        let window = 47 * 100;
        m.run_invalidation_traffic(TileId::new(4), SwitchPattern::Fsw, window);
        let act = m.counters();
        assert_eq!(act.noc_packets, 100);
        assert_eq!(act.chip_bridge_flits, 700);
        assert_eq!(act.cycles, window);
        // FSW on 4 hops: payload flits alternate 64-bit toggles; header
        // toggles only via payload juxtaposition.
        assert!(act.noc_bit_switches > 100 * 4 * 5 * 32);
    }

    #[test]
    fn nsw_traffic_switches_far_less_than_fsw() {
        let mut nsw = machine();
        nsw.run_invalidation_traffic(TileId::new(4), SwitchPattern::Nsw, 47 * 50);
        let mut fsw = machine();
        fsw.run_invalidation_traffic(TileId::new(4), SwitchPattern::Fsw, 47 * 50);
        assert!(nsw.counters().noc_bit_switches * 4 < fsw.counters().noc_bit_switches);
    }

    #[test]
    fn partially_idle_machine_steps_only_busy_cores() {
        // One running core out of 25: the event-driven engine must not
        // step the 24 idle cores, so total step calls stay bounded by
        // the executed cycles — where the naive engine pays 25x.
        let mut event = machine();
        event.load_thread(TileId::new(7), 0, count_loop(2_000));
        event.run(20_000);
        assert!(event.retired() > 4_000, "workload ran");
        assert!(
            event.engine_steps() <= 20_000,
            "event engine stepped idle cores: {} steps",
            event.engine_steps()
        );

        let mut naive = machine();
        naive.load_thread(TileId::new(7), 0, count_loop(2_000));
        naive.run_naive(20_000);
        assert_eq!(naive.engine_steps() % 25, 0);
        assert!(
            naive.engine_steps() >= 25 * event.engine_steps() / 2,
            "baseline sanity: naive {} vs event {}",
            naive.engine_steps(),
            event.engine_steps()
        );
        // And the counters still agree exactly.
        assert_eq!(event.counters(), naive.counters());
    }

    #[test]
    fn fully_idle_machine_steps_no_cores() {
        let mut m = machine();
        m.run(100_000);
        assert_eq!(m.engine_steps(), 0);
        assert_eq!(m.counters().cycles, 100_000);
    }

    /// Deterministic engine-equivalence regression over a workload mix
    /// that exercises every scheduler path: store-buffer drains in dead
    /// windows, memory stalls, rollbacks, dual threads, cross-core
    /// coherence and chunked runs.
    #[test]
    fn event_engine_matches_naive_on_mixed_workloads() {
        let store_heavy = |base: i64| {
            let mut v = vec![Instruction::movi(Reg::new(1), base)];
            for k in 0..40 {
                v.push(Instruction::stx(Reg::new(1), Reg::new(1), k * 8));
            }
            v.push(Instruction::membar());
            v.push(Instruction::halt());
            Program::from_instructions(v)
        };
        let load_chain = |base: i64| {
            Program::from_instructions(vec![
                Instruction::movi(Reg::new(1), base),
                Instruction::ldx(Reg::new(2), Reg::new(1), 0),
                Instruction::ldx(Reg::new(3), Reg::new(1), 64),
                Instruction::ldx(Reg::new(4), Reg::new(1), 4096),
                Instruction::halt(),
            ])
        };
        let build = || {
            let mut m = machine();
            m.load_thread(TileId::new(0), 0, store_heavy(0x6000));
            m.load_thread(TileId::new(0), 1, count_loop(500));
            m.load_thread(TileId::new(12), 0, load_chain(0x6000));
            m.load_thread(TileId::new(24), 0, store_heavy(0x6000));
            m.load_thread(TileId::new(24), 1, load_chain(0x9000));
            m
        };
        let mut event = build();
        let mut naive = build();
        // Uneven chunks so boundaries land inside fast-forward gaps.
        for chunk in [1, 7, 350, 1_000, 13, 4_000, 30_000] {
            event.run(chunk);
            naive.run_naive(chunk);
        }
        assert_eq!(event.now(), naive.now());
        assert_eq!(event.retired(), naive.retired());
        assert_eq!(event.counters(), naive.counters());
    }

    #[test]
    fn disabled_cores_stay_silent_but_routers_forward() {
        let mut m = machine();
        // Fuse off tiles 3 and 12.
        m.apply_core_mask((1 << 3) | (1 << 12));
        assert_eq!(m.disabled_cores(), 2);
        let p = count_loop(50);
        m.load_on_tiles(25, 0, &p);
        assert!(m.run_until_halted(200_000), "degraded chip must still halt");
        assert_eq!(m.core(TileId::new(3)).retired(), 0);
        assert_eq!(m.core(TileId::new(12)).retired(), 0);
        assert!(m.core(TileId::new(0)).retired() > 0);
        assert!(m.core(TileId::new(24)).retired() > 0);
        // Traffic still routes *through* the disabled tiles' routers:
        // tile 3 sits on the tile0→tile4 X path.
        let before = m.counters().noc_flit_hops;
        m.run_invalidation_traffic(TileId::new(4), SwitchPattern::Fsw, 47 * 10);
        assert!(m.counters().noc_flit_hops > before);
    }

    #[test]
    fn disabling_reenabling_restores_a_loadable_core() {
        let mut m = machine();
        m.apply_core_mask(1 << 7);
        m.load_thread(TileId::new(7), 0, count_loop(10));
        assert!(
            !m.core(TileId::new(7)).any_running(),
            "load must be ignored"
        );
        m.apply_core_mask(0);
        m.load_thread(TileId::new(7), 0, count_loop(10));
        assert!(m.run_until_halted(50_000));
        assert!(m.core(TileId::new(7)).retired() > 0);
    }

    #[test]
    fn watchdog_reports_a_memory_stalled_thread() {
        let mut m = machine();
        // A cold miss holds the thread ~424 cycles; a 50-cycle watchdog
        // window fires mid-wait and must name the memory wait.
        m.load_thread(
            TileId::new(5),
            0,
            Program::from_instructions(vec![
                Instruction::movi(Reg::new(1), 0x9000),
                Instruction::ldx(Reg::new(2), Reg::new(1), 0),
                Instruction::halt(),
            ]),
        );
        let report = m.run_until_halted_watched(5_000, 50).unwrap_err();
        assert_eq!(report.kind, HangKind::Stalled);
        assert_eq!(report.window, 50);
        let stuck: Vec<_> = report.stuck.iter().map(|s| (s.tile, s.wait)).collect();
        assert_eq!(stuck, vec![(TileId::new(5), crate::core::WaitKind::Memory)]);
        assert!(report.stuck[0].ready_at > report.at_cycle);
        let rendered = report.to_string();
        assert!(rendered.contains("no retirement"), "{rendered}");
        assert!(rendered.contains("waiting on memory"), "{rendered}");
        // And it converts into the workspace error currency.
        let err: PitonError = report.into();
        assert!(err.is_transient());
    }

    #[test]
    fn watchdog_timeout_reports_running_threads() {
        let mut m = machine();
        // An infinite loop keeps retiring: only the budget stops it.
        m.load_thread(
            TileId::new(0),
            0,
            Program::from_instructions(vec![
                Instruction::nop(),
                Instruction::branch(Opcode::Beq, Reg::G0, Reg::G0, 0),
            ]),
        );
        let report = m.run_until_halted_watched(2_000, 500).unwrap_err();
        assert_eq!(report.kind, HangKind::Timeout);
        assert!(report.retired > 0);
    }

    #[test]
    fn watchdog_passes_a_completing_workload_unchanged() {
        let mut watched = machine();
        let mut plain = machine();
        watched.load_thread(TileId::new(0), 0, count_loop(100));
        plain.load_thread(TileId::new(0), 0, count_loop(100));
        assert!(watched.run_until_halted_watched(100_000, 1_000).is_ok());
        assert!(plain.run_until_halted(100_000));
        assert_eq!(watched.retired(), plain.retired());
        assert_eq!(watched.counters(), plain.counters());
    }

    #[test]
    fn watchdog_chunk_size_never_changes_retirement() {
        // Chunk granularity only decides how soon the loop notices the
        // halt: retirement is identical, and a finer chunk stops the
        // clock no later than the coarse one.
        let mut coarse = machine();
        coarse.load_thread(TileId::new(0), 0, count_loop(100));
        assert!(coarse.run_until_halted_watched(100_000, 1_000).is_ok());
        std::env::set_var("PITON_WATCHDOG_CHUNK", "77");
        let mut fine = machine();
        fine.load_thread(TileId::new(0), 0, count_loop(100));
        let fine_result = fine.run_until_halted_watched(100_000, 1_000);
        std::env::remove_var("PITON_WATCHDOG_CHUNK");
        assert!(fine_result.is_ok());
        assert_eq!(fine.retired(), coarse.retired());
        assert!(
            fine.now() <= coarse.now(),
            "{} > {}",
            fine.now(),
            coarse.now()
        );
    }

    #[test]
    fn guarded_run_uses_the_default_window() {
        let mut m = machine();
        m.load_thread(TileId::new(0), 0, count_loop(100));
        assert!(m.run_until_halted_guarded(100_000).is_ok());
    }

    #[test]
    fn blown_deadline_fires_the_watchdog_as_a_timeout() {
        use std::time::{Duration, Instant};
        piton_arch::deadline::arm(Instant::now() - Duration::from_millis(1));
        let mut m = machine();
        m.load_thread(TileId::new(0), 0, count_loop(100));
        let report = m.run_until_halted_watched(100_000, 1_000).unwrap_err();
        piton_arch::deadline::disarm();
        assert_eq!(report.kind, HangKind::Timeout);
        let err: PitonError = report.into();
        assert!(err.is_transient());
    }

    #[test]
    fn fswa_has_coupling_fsw_does_not() {
        let mut fswa = machine();
        fswa.run_invalidation_traffic(TileId::new(2), SwitchPattern::Fswa, 47 * 50);
        let mut fsw = machine();
        fsw.run_invalidation_traffic(TileId::new(2), SwitchPattern::Fsw, 47 * 50);
        assert!(
            fswa.counters().noc_coupling_switches
                > 10 * fsw.counters().noc_coupling_switches.max(1)
        );
    }

    mod engine_equivalence {
        use super::*;
        use crate::testprog::decode_program;
        use proptest::prelude::*;

        /// Re-runs both engines with retire/cache/noc tracing and
        /// renders the first divergent event — the context a bare
        /// counter mismatch hides. Engine-mode events are excluded:
        /// the two engines legitimately differ there.
        fn divergence_context(build: impl Fn() -> Machine, chunks: &[u64]) -> String {
            let spec = piton_obs::trace::TraceSpec::parse("retire,cache,noc").expect("static spec");
            let (_, event_trace) = piton_obs::trace::capture(&spec, || {
                let mut m = build();
                for &chunk in chunks {
                    m.run(chunk);
                }
                m.now()
            });
            let (_, naive_trace) = piton_obs::trace::capture(&spec, || {
                let mut m = build();
                for &chunk in chunks {
                    m.run_naive(chunk);
                }
                m.now()
            });
            match piton_obs::diff::first_divergence(&event_trace, &naive_trace) {
                Some(d) => format!("{d}"),
                None => format!(
                    "traces identical over {} events (divergence is outside traced subsystems)",
                    event_trace.len()
                ),
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn event_engine_matches_naive_engine(
                seeds in proptest::collection::vec(proptest::strategy::any::<u64>(), 2..8),
                placement in proptest::collection::vec((0usize..25, 0usize..2), 1..9),
                chunks in proptest::collection::vec(50u64..4_000, 1..6),
            ) {
                let build = || {
                    let mut m = machine();
                    for (slot, &(tile, thread)) in placement.iter().enumerate() {
                        m.load_thread(
                            TileId::new(tile),
                            thread,
                            decode_program(&seeds, slot),
                        );
                    }
                    m
                };
                let mut event = build();
                let mut naive = build();
                // Identical chunking for both engines: chunk boundaries
                // are observable (they cut fast-forward windows), so they
                // must cut both engines in the same places.
                for &chunk in &chunks {
                    event.run(chunk);
                    naive.run_naive(chunk);
                }
                prop_assert_eq!(event.now(), naive.now());
                prop_assert_eq!(event.retired(), naive.retired());
                prop_assert!(event.engine_steps() <= naive.engine_steps());
                // Full counter equality, f64 fields bitwise included —
                // on mismatch, localize it via the trace differential.
                if event.counters() != naive.counters() {
                    prop_assert_eq!(
                        event.counters(),
                        naive.counters(),
                        "engines diverged; {}",
                        divergence_context(build, &chunks)
                    );
                }
                // The diagnostic counters promote into the metrics
                // registry exactly once (delta-published watermarks), so
                // the skip behavior asserted above is visible to the
                // observability layer too. A unique prefix isolates this
                // test from other machines dropping concurrently.
                piton_obs::metrics::enable();
                let prefix = format!("test_eq.{}", seeds.first().copied().unwrap_or(0));
                event.publish_metrics_as(&prefix);
                let snap = piton_obs::metrics::snapshot();
                prop_assert_eq!(
                    snap.counters.get(&format!("{}.steps", prefix)).copied(),
                    Some(event.engine_steps())
                );
                let modal: u64 = [
                    format!("{}.event_cycles", prefix),
                    format!("{}.dense_cycles", prefix),
                    format!("{}.batched_cycles", prefix),
                ]
                .iter()
                .filter_map(|k| snap.counters.get(k))
                .sum();
                prop_assert_eq!(modal, event.engine_metrics().event_cycles
                    + event.engine_metrics().dense_cycles
                    + event.engine_metrics().batched_cycles);
                // Batch accounting publishes coherently: every batched
                // cycle belongs to a batch, and a batch implies cycles.
                let batches = snap
                    .counters
                    .get(&format!("{}.batches", prefix))
                    .copied()
                    .unwrap_or(0);
                prop_assert_eq!(batches, event.engine_metrics().batches);
                prop_assert!(
                    batches == 0 || event.engine_metrics().batched_cycles > 0,
                    "batches without batched cycles"
                );
                // Re-publishing must be a no-op (watermarks consumed).
                event.publish_metrics_as(&prefix);
                let again = piton_obs::metrics::snapshot();
                prop_assert_eq!(
                    again.counters.get(&format!("{}.steps", prefix)).copied(),
                    Some(event.engine_steps())
                );
            }

            /// Table IV degraded parts: under ANY faulty-core mask the
            /// two engines still agree exactly, and disabled tiles
            /// retire nothing while their routers keep forwarding.
            #[test]
            fn engines_agree_under_any_faulty_core_mask(
                seeds in proptest::collection::vec(proptest::strategy::any::<u64>(), 2..6),
                placement in proptest::collection::vec((0usize..25, 0usize..2), 1..8),
                mask in 0u32..(1 << 25),
                chunks in proptest::collection::vec(50u64..2_000, 1..4),
            ) {
                let build = || {
                    let mut m = machine();
                    m.apply_core_mask(mask);
                    for (slot, &(tile, thread)) in placement.iter().enumerate() {
                        m.load_thread(
                            TileId::new(tile),
                            thread,
                            decode_program(&seeds, slot),
                        );
                    }
                    m
                };
                let mut event = build();
                let mut naive = build();
                for &chunk in &chunks {
                    event.run(chunk);
                    naive.run_naive(chunk);
                }
                prop_assert_eq!(event.now(), naive.now());
                prop_assert_eq!(event.retired(), naive.retired());
                prop_assert_eq!(event.counters(), naive.counters());
                prop_assert_eq!(event.disabled_cores(), mask.count_ones() as usize);
                for t in 0..25 {
                    if mask & (1 << t) != 0 {
                        prop_assert_eq!(event.core(TileId::new(t)).retired(), 0);
                    }
                }
            }
        }
    }
}
