//! The whole-chip machine: 25 cores, the coherent memory system, and the
//! global cycle loop.
//!
//! [`Machine`] is the simulator's top level. Workloads are loaded onto
//! hardware threads, the machine is stepped for a number of cycles (with
//! dead-cycle fast-forwarding when every thread is stalled), and the
//! resulting [`ActivityCounters`] window is handed to the power model.
//!
//! The machine also exposes the chipset-side dummy-packet injector used
//! by the NoC energy study of §IV-G (Figure 12): the real experiment
//! modified the chipset FPGA logic to stream invalidation packets into
//! the chip through the chip bridge at tile0, producing seven valid NoC
//! flits every 47 cycles due to the bandwidth mismatch between the
//! 32-bit chip bridge and the 64-bit NoCs.
//!
//! # Examples
//!
//! ```
//! use piton_sim::machine::Machine;
//! use piton_sim::program::Program;
//! use piton_arch::isa::Instruction;
//! use piton_arch::config::ChipConfig;
//!
//! let mut m = Machine::new(&ChipConfig::default());
//! m.load_thread(0.into(), 0, Program::from_instructions(vec![
//!     Instruction::nop(),
//!     Instruction::halt(),
//! ]));
//! assert!(m.run_until_halted(1_000));
//! assert_eq!(m.counters().issues.iter().sum::<u64>(), 2);
//! ```

use std::sync::Arc;

use piton_arch::config::ChipConfig;
use piton_arch::topology::TileId;

use crate::core::Core;
use crate::events::ActivityCounters;
use crate::memsys::MemorySystem;
use crate::noc::NocId;
use crate::program::Program;

/// Cycles between valid-flit groups on the chip bridge (§IV-G: "for
/// every 47 cycles there are seven valid NoC flits").
pub const BRIDGE_PATTERN_CYCLES: u64 = 47;
/// Valid flits per repeating bridge pattern (1 header + 6 payload).
pub const BRIDGE_PATTERN_FLITS: usize = 7;

/// Payload bit-switching pattern for NoC dummy packets (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchPattern {
    /// No switching: all payload bits zero.
    Nsw,
    /// Half switching: flits alternate `0x3333…` / zero.
    Hsw,
    /// Full switching: flits alternate all-ones / zero.
    Fsw,
    /// Full switching alternate: flits alternate `0xAAAA…` / `0x5555…`
    /// (coupling aggressors).
    Fswa,
}

impl SwitchPattern {
    /// All four patterns in the paper's legend order.
    pub const ALL: [SwitchPattern; 4] = [
        SwitchPattern::Nsw,
        SwitchPattern::Hsw,
        SwitchPattern::Fsw,
        SwitchPattern::Fswa,
    ];

    /// The label used in Figure 12.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SwitchPattern::Nsw => "NSW",
            SwitchPattern::Hsw => "HSW",
            SwitchPattern::Fsw => "FSW",
            SwitchPattern::Fswa => "FSWA",
        }
    }

    /// The two alternating payload flit values.
    #[must_use]
    pub fn flit_pair(self) -> (u64, u64) {
        match self {
            SwitchPattern::Nsw => (0, 0),
            SwitchPattern::Hsw => (0x3333_3333_3333_3333, 0),
            SwitchPattern::Fsw => (u64::MAX, 0),
            SwitchPattern::Fswa => (0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555),
        }
    }
}

/// The simulated Piton chip.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: ChipConfig,
    cores: Vec<Core>,
    memsys: MemorySystem,
    act: ActivityCounters,
    now: u64,
}

impl Machine {
    /// Builds an idle machine from a chip configuration.
    #[must_use]
    pub fn new(cfg: &ChipConfig) -> Self {
        let cores = cfg
            .topology()
            .tiles()
            .map(|t| {
                Core::new(
                    t,
                    cfg.threads_per_core as usize,
                    cfg.store_buffer_entries as usize,
                )
            })
            .collect();
        Self {
            cfg: cfg.clone(),
            cores,
            memsys: MemorySystem::new(cfg),
            act: ActivityCounters::new(),
            now: 0,
        }
    }

    /// The chip configuration.
    #[must_use]
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Cumulative activity counters.
    #[must_use]
    pub fn counters(&self) -> &ActivityCounters {
        &self.act
    }

    /// The memory system (for test inspection and data poking).
    #[must_use]
    pub fn memsys(&self) -> &MemorySystem {
        &self.memsys
    }

    /// Mutable memory-system access (program loaders, experiments).
    pub fn memsys_mut(&mut self) -> &mut MemorySystem {
        &mut self.memsys
    }

    /// A core by tile (test inspection).
    #[must_use]
    pub fn core(&self, tile: TileId) -> &Core {
        &self.cores[tile.index()]
    }

    /// Loads a program onto a hardware thread, writing its data image to
    /// memory first.
    pub fn load_thread(&mut self, tile: TileId, thread: usize, program: Program) {
        for &(addr, value) in &program.data {
            self.memsys.poke(addr, value);
        }
        self.cores[tile.index()].load_thread(thread, Arc::new(program));
    }

    /// Loads the same program onto thread `thread` of every one of the
    /// first `n` tiles (the paper's 25-core EPI tests).
    pub fn load_on_tiles(&mut self, n: usize, thread: usize, program: &Program) {
        for i in 0..n {
            self.load_thread(TileId::new(i), thread, program.clone());
        }
    }

    /// Whether any hardware thread is still running.
    #[must_use]
    pub fn any_running(&self) -> bool {
        self.cores.iter().any(Core::any_running)
    }

    /// Total instructions retired across the chip.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.cores.iter().map(Core::retired).sum()
    }

    /// Runs for `cycles` cycles (the clock always ticks; idle cycles are
    /// fast-forwarded but still counted, as the clock tree still burns
    /// idle power).
    pub fn run(&mut self, cycles: u64) {
        let end = self.now + cycles;
        while self.now < end {
            let mut issued_any = false;
            for core in &mut self.cores {
                issued_any |= core.step(self.now, &mut self.memsys, &mut self.act);
            }
            self.act.cycles += 1;
            self.now += 1;
            if issued_any {
                continue;
            }
            // Fast-forward to the next cycle any core can issue.
            let next = self
                .cores
                .iter()
                .filter_map(Core::next_ready_at)
                .min()
                .unwrap_or(end)
                .min(end)
                .max(self.now);
            if next > self.now {
                let skipped = next - self.now;
                let running = self.cores.iter().filter(|c| c.any_running()).count() as u64;
                // No thread is ready before `next`, so every running
                // thread keeps its current wait for the whole window:
                // active cycles accrue per running core, memory stalls
                // only per thread actually waiting on the memory system
                // (matching Core::step's per-cycle charging).
                let memory_waiting: u64 = self
                    .cores
                    .iter()
                    .map(|c| c.memory_waiting_threads(self.now))
                    .sum();
                self.act.cycles += skipped;
                self.act.core_active_cycles += skipped * running;
                self.act.mem_stall_cycles += skipped * memory_waiting;
                self.now = next;
            }
        }
    }

    /// Runs until every thread halts or `max_cycles` elapse. Returns
    /// `true` if everything halted.
    pub fn run_until_halted(&mut self, max_cycles: u64) -> bool {
        let end = self.now + max_cycles;
        while self.any_running() && self.now < end {
            let chunk = 1_000.min(end - self.now);
            self.run(chunk);
        }
        !self.any_running()
    }

    /// Records I/O transactions (SD card, serial port) crossing the
    /// chip bridge — driven by workload models whose I/O the ISA-level
    /// simulator does not execute (e.g. the SPECint surrogates with
    /// high file activity, §IV-I).
    pub fn record_io(&mut self, transactions: u64) {
        self.act.io_transactions += transactions;
        // Each transaction crosses the pin-limited bridge as a burst.
        self.act.chip_bridge_flits += transactions * 20;
    }

    /// Drives the chipset-side NoC dummy-packet traffic of the Figure 12
    /// experiment for `cycles` cycles: every 47 cycles, one packet of one
    /// header flit plus six payload flits (alternating per `pattern`)
    /// enters through the chip bridge at tile0 and routes to `dst` on
    /// NoC2, where the L1.5 receives it as an invalidation.
    pub fn run_invalidation_traffic(&mut self, dst: TileId, pattern: SwitchPattern, cycles: u64) {
        let end = self.now + cycles;
        let (even, odd) = pattern.flit_pair();
        let entry = TileId::new(0);
        let mut flit_toggle = false;
        while self.now < end {
            // Header carries the destination route; constant per run.
            let mut flits = Vec::with_capacity(BRIDGE_PATTERN_FLITS);
            flits.push(dst.index() as u64);
            for _ in 0..BRIDGE_PATTERN_FLITS - 1 {
                flits.push(if flit_toggle { odd } else { even });
                flit_toggle = !flit_toggle;
            }
            self.act.chip_bridge_flits += BRIDGE_PATTERN_FLITS as u64;
            self.memsys
                .noc
                .send(NocId::Noc2, entry, dst, &flits, &mut self.act);
            // Receipt at the destination L1.5.
            self.act.invalidations += 1;
            self.act.l15_reads += 1;

            let step = BRIDGE_PATTERN_CYCLES.min(end - self.now);
            self.act.cycles += step;
            self.now += step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piton_arch::isa::{Instruction, Opcode, Reg};

    fn machine() -> Machine {
        Machine::new(&ChipConfig::piton())
    }

    fn count_loop(iters: i64) -> Program {
        Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), iters),
            Instruction::movi(Reg::new(2), 1),
            Instruction::alu(Opcode::Sub, Reg::new(1), Reg::new(1), Reg::new(2)),
            Instruction::branch(Opcode::Bne, Reg::new(1), Reg::G0, 2),
            Instruction::halt(),
        ])
    }

    #[test]
    fn runs_a_program_to_halt() {
        let mut m = machine();
        m.load_thread(TileId::new(0), 0, count_loop(10));
        assert!(m.run_until_halted(10_000));
        assert!(m.retired() > 20);
    }

    #[test]
    fn twenty_five_cores_run_in_parallel() {
        let mut m = machine();
        let p = count_loop(100);
        m.load_on_tiles(25, 0, &p);
        assert!(m.run_until_halted(100_000));
        // All 25 retire the same instruction count.
        let per_core = m.core(TileId::new(0)).retired();
        for t in m.config().topology().tiles() {
            assert_eq!(m.core(t).retired(), per_core, "{t}");
        }
    }

    #[test]
    fn clock_keeps_counting_when_idle() {
        let mut m = machine();
        m.run(500);
        assert_eq!(m.counters().cycles, 500);
        assert_eq!(m.now(), 500);
        assert_eq!(m.counters().total_issues(), 0);
    }

    #[test]
    fn fast_forward_preserves_cycle_accounting() {
        let mut m = machine();
        // A single thread that stalls on a cold memory miss: the machine
        // fast-forwards ~424 cycles but must still count them.
        m.load_thread(
            TileId::new(0),
            0,
            Program::from_instructions(vec![
                Instruction::movi(Reg::new(1), 0x9000),
                Instruction::ldx(Reg::new(2), Reg::new(1), 0),
                Instruction::halt(),
            ]),
        );
        assert!(m.run_until_halted(5_000));
        assert!(m.counters().cycles >= 424);
    }

    #[test]
    fn data_image_is_loaded_before_start() {
        let mut m = machine();
        let mut p = Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), 0x8000),
            Instruction::ldx(Reg::new(2), Reg::new(1), 0),
            Instruction::halt(),
        ]);
        p.data.push((0x8000, 777));
        m.load_thread(TileId::new(3), 0, p);
        assert!(m.run_until_halted(5_000));
        assert_eq!(m.core(TileId::new(3)).reg(0, Reg::new(2)), 777);
    }

    #[test]
    fn invalidation_traffic_produces_bridge_pattern() {
        let mut m = machine();
        let window = 47 * 100;
        m.run_invalidation_traffic(TileId::new(4), SwitchPattern::Fsw, window);
        let act = m.counters();
        assert_eq!(act.noc_packets, 100);
        assert_eq!(act.chip_bridge_flits, 700);
        assert_eq!(act.cycles, window);
        // FSW on 4 hops: payload flits alternate 64-bit toggles; header
        // toggles only via payload juxtaposition.
        assert!(act.noc_bit_switches > 100 * 4 * 5 * 32);
    }

    #[test]
    fn nsw_traffic_switches_far_less_than_fsw() {
        let mut nsw = machine();
        nsw.run_invalidation_traffic(TileId::new(4), SwitchPattern::Nsw, 47 * 50);
        let mut fsw = machine();
        fsw.run_invalidation_traffic(TileId::new(4), SwitchPattern::Fsw, 47 * 50);
        assert!(nsw.counters().noc_bit_switches * 4 < fsw.counters().noc_bit_switches);
    }

    #[test]
    fn fswa_has_coupling_fsw_does_not() {
        let mut fswa = machine();
        fswa.run_invalidation_traffic(TileId::new(2), SwitchPattern::Fswa, 47 * 50);
        let mut fsw = machine();
        fsw.run_invalidation_traffic(TileId::new(2), SwitchPattern::Fsw, 47 * 50);
        assert!(
            fswa.counters().noc_coupling_switches
                > 10 * fsw.counters().noc_coupling_switches.max(1)
        );
    }
}
