//! Fast deterministic hashing for hot-path lookup tables.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3: DoS-resistant, but an
//! order of magnitude slower than necessary for the simulator's internal
//! tables, which hash attacker-free `u64` keys (line addresses, word
//! addresses) millions of times per simulated second. [`FxHasher`] is the
//! multiply-rotate-xor hash used by the Rust compiler's own interning
//! tables: a single rotate/xor/multiply per 8-byte chunk, fully
//! deterministic across runs and platforms, which keeps table iteration
//! irrelevant (none of the simulator's maps are iterated) and results
//! reproducible.
//!
//! # Examples
//!
//! ```
//! use piton_sim::fastmap::FastMap;
//!
//! let mut dir: FastMap<u64, &str> = FastMap::default();
//! dir.insert(0x1000, "line");
//! assert_eq!(dir.get(&0x1000), Some(&"line"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by the fast deterministic [`FxHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// The multiplicative constant of the Fx hash (the 64-bit golden-ratio
/// constant, as used by rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher (rustc's Fx hash).
///
/// Not DoS-resistant — only for maps whose keys the simulator itself
/// generates.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn byte_stream_matches_word_stream_for_aligned_input() {
        let mut a = FxHasher::default();
        a.write(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0x0123_4567_89ab_cdef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for k in 0..1000u64 {
            m.insert(k * 8, k);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&(k * 8)), Some(&k));
        }
        assert_eq!(m.len(), 1000);
    }
}
