//! The off-chip memory path: chip bridge, gateway FPGA, FMC link, chipset
//! FPGA (demux, north bridge, DRAM controller) and DDR3 DRAM.
//!
//! Figure 15 of the paper breaks the ~790 ns round trip of a `ldx` miss
//! from tile0 into per-component segments, all normalized to the
//! 500.05 MHz core clock, totalling ~395 cycles. This module reproduces
//! that pipeline as data (one [`PathSegment`] per component) and models
//! the path as a *blocking, single-outstanding-request* channel: the
//! Xilinx memory controller behind a 32-bit DRAM interface services one
//! cache-line request at a time (and needs two DRAM accesses per request),
//! so concurrent misses from many cores queue and serialize — the
//! behaviour behind the paper's very large L2-miss energy (Table VII).
//!
//! # Examples
//!
//! ```
//! use piton_sim::chipset::{figure15_segments, MemoryPath};
//!
//! let total: u64 = figure15_segments().iter().map(|s| s.cycles).sum();
//! assert_eq!(total, 395); // "~395 Total Round Trip Cycles = ~790ns"
//! ```

use serde::{Deserialize, Serialize};

use crate::events::ActivityCounters;

/// One component of the memory round trip (Figure 15).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSegment {
    /// Component name as labelled in Figure 15.
    pub component: &'static str,
    /// What the cycles are spent on.
    pub activity: &'static str,
    /// Cycles, normalized to the Piton core clock (500.05 MHz).
    pub cycles: u64,
}

/// The Figure 15 latency breakdown of a `ldx` from tile0 to DRAM and
/// back. Segments are in traversal order; the DRAM segment folds in the
/// two accesses required by the 32-bit DRAM data interface.
#[must_use]
pub fn figure15_segments() -> Vec<PathSegment> {
    vec![
        PathSegment {
            component: "Tile Array",
            activity: "L1 Miss + L2 Miss",
            cycles: 28,
        },
        PathSegment {
            component: "Chip Bridge",
            activity: "Buf FFs + AFIFO",
            cycles: 39,
        },
        PathSegment {
            component: "Gateway FPGA",
            activity: "AFIFO + Mux",
            cycles: 5,
        },
        PathSegment {
            component: "FMC",
            activity: "Buf FFs + AFIFO",
            cycles: 39,
        },
        PathSegment {
            component: "Chip Bridge Demux",
            activity: "Buf FFs + AFIFO",
            cycles: 11,
        },
        PathSegment {
            component: "North Bridge",
            activity: "Buf FFs + Route",
            cycles: 8,
        },
        PathSegment {
            component: "DRAM Ctl",
            activity: "AFIFO + Buf FFs + Req Send",
            cycles: 16,
        },
        PathSegment {
            component: "DRAM",
            activity: "Mem Ctl + DRAM Access (2x: 32-bit interface)",
            cycles: 140,
        },
        PathSegment {
            component: "DRAM Ctl",
            activity: "Resp Process + AFIFO",
            cycles: 11,
        },
        PathSegment {
            component: "North Bridge",
            activity: "Buf FFs + Mux",
            cycles: 6,
        },
        PathSegment {
            component: "Chip Bridge Demux",
            activity: "Buf FFs + Mux",
            cycles: 12,
        },
        PathSegment {
            component: "Chip Bridge",
            activity: "Buf FFs + AFIFO",
            cycles: 63,
        },
        PathSegment {
            component: "Tile Array",
            activity: "L2 Fill + L1 Fill",
            cycles: 17,
        },
    ]
}

/// Round-trip cycles of the unloaded memory path (sum of Figure 15).
#[must_use]
pub fn round_trip_cycles() -> u64 {
    figure15_segments().iter().map(|s| s.cycles).sum()
}

/// The blocking off-chip memory channel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryPath {
    /// Cycle at which the channel next becomes free.
    free_at: u64,
    /// Requests serviced so far (drives deterministic latency jitter).
    serviced: u64,
    /// Peak-to-peak deterministic jitter in cycles ("memory access
    /// latency varies", §IV-F).
    jitter_cycles: u64,
}

impl MemoryPath {
    /// Creates an idle memory path with the paper's default jitter.
    #[must_use]
    pub fn new() -> Self {
        Self {
            free_at: 0,
            serviced: 0,
            jitter_cycles: 16,
        }
    }

    /// Unloaded service latency (request issue to fill) in core cycles.
    #[must_use]
    pub fn base_latency(&self) -> u64 {
        round_trip_cycles()
    }

    /// Issues one cache-line request at cycle `now`.
    ///
    /// Returns the number of cycles until the fill returns, including any
    /// wait for earlier requests occupying the blocking channel. Counts
    /// the off-chip request, the two DRAM accesses and the chip-bridge
    /// flit traffic (3-flit request out, line fill back) into `act`.
    pub fn access(&mut self, now: u64, act: &mut ActivityCounters) -> u64 {
        let start = self.free_at.max(now);
        let jitter = self.jitter(self.serviced);
        let service = self.base_latency() + jitter;
        self.free_at = start + service;
        self.serviced += 1;

        act.offchip_requests += 1;
        act.dram_accesses += 2; // 32-bit DRAM interface: two accesses per request
                                // 3-flit request out; a 64 B line returns as 8 data flits + header.
        act.chip_bridge_flits += 3 + 9;

        self.free_at - now
    }

    /// Deterministic per-request jitter in `[0, jitter_cycles)`.
    fn jitter(&self, n: u64) -> u64 {
        if self.jitter_cycles == 0 {
            return 0;
        }
        // Small multiplicative hash; deterministic and well spread.
        let h = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 33) % self.jitter_cycles
    }

    /// Average service latency over the requests issued so far, or the
    /// base latency if none were issued (diagnostics).
    #[must_use]
    pub fn serviced_requests(&self) -> u64 {
        self.serviced
    }
}

impl Default for MemoryPath {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure15_sums_to_395() {
        assert_eq!(round_trip_cycles(), 395);
        // ~790 ns at 500.05 MHz.
        let ns: f64 = 395.0 / 500.05e6 * 1e9;
        assert!((ns - 790.0).abs() < 2.0);
    }

    #[test]
    fn dram_segment_reflects_double_access() {
        let dram = figure15_segments()
            .into_iter()
            .find(|s| s.component == "DRAM")
            .unwrap();
        assert_eq!(dram.cycles, 140); // 2 x ~70
    }

    #[test]
    fn unloaded_access_latency_near_base() {
        let mut path = MemoryPath::new();
        let mut act = ActivityCounters::default();
        let lat = path.access(1000, &mut act);
        assert!((395..395 + 16).contains(&lat), "latency {lat}");
        assert_eq!(act.dram_accesses, 2);
        assert_eq!(act.offchip_requests, 1);
    }

    #[test]
    fn concurrent_requests_serialize() {
        let mut path = MemoryPath::new();
        let mut act = ActivityCounters::default();
        let l1 = path.access(0, &mut act);
        let l2 = path.access(0, &mut act);
        let l3 = path.access(0, &mut act);
        assert!(l2 > l1 + 390, "second request must queue: {l1} {l2}");
        assert!(l3 > l2 + 390);
    }

    #[test]
    fn idle_channel_does_not_penalize_later_requests() {
        let mut path = MemoryPath::new();
        let mut act = ActivityCounters::default();
        let _ = path.access(0, &mut act);
        // Long after the first completed.
        let lat = path.access(10_000, &mut act);
        assert!(lat < 395 + 16);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = MemoryPath::new();
        for n in 0..100 {
            let j = a.jitter(n);
            assert!(j < 16);
            assert_eq!(j, MemoryPath::new().jitter(n));
        }
        // Not constant.
        let distinct: std::collections::HashSet<u64> = (0..100).map(|n| a.jitter(n)).collect();
        assert!(distinct.len() > 4);
    }
}
