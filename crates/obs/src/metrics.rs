//! Process-wide metrics registry: counters, gauges, log₂ histograms.
//!
//! The registry sits *off* the simulator's hot paths: cycle engines
//! accumulate their tallies in plain struct fields and publish them
//! here once per machine (see `Machine::publish_metrics` in
//! `piton-sim`), and sweep/monitor code records rare events (retries,
//! holes, dropped ADC samples) directly. Recording is gated on
//! [`enabled`] — one relaxed atomic load — so library users that never
//! opt in (unit tests, benches) pay a branch, not a mutex.
//!
//! Snapshots serialize into the `piton-run-manifest/v1` document (see
//! [`crate::manifest`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::{ObjectBuilder, Value};

/// Number of log₂ buckets in a [`Histogram`]: bucket `i` counts values
/// `v` with `bit_len(v) == i` (bucket 0 holds zeros), saturating at
/// the top bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-shape log₂ histogram over `u64` observations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let bucket = (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Arithmetic mean of the observations, if any.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

/// Is metrics recording on? One relaxed load.
#[inline(always)]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metrics recording on (idempotent).
pub fn enable() {
    {
        let mut reg = REGISTRY.lock().unwrap();
        if reg.is_none() {
            *reg = Some(Registry::default());
        }
    }
    ENABLED.store(true, Ordering::Relaxed);
}

fn with_registry(f: impl FnOnce(&mut Registry)) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap();
    if let Some(reg) = reg.as_mut() {
        f(reg);
    }
}

/// Adds `delta` to counter `name` (created at zero on first use).
pub fn counter_add(name: &str, delta: u64) {
    with_registry(|reg| {
        *reg.counters.entry(name.to_owned()).or_insert(0) += delta;
    });
}

/// Sets gauge `name` to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    with_registry(|reg| {
        reg.gauges.insert(name.to_owned(), value);
    });
}

/// Records `value` into histogram `name`.
pub fn histogram_observe(name: &str, value: u64) {
    with_registry(|reg| {
        reg.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    });
}

/// Merges a locally-accumulated histogram into histogram `name` in one
/// registry lock (the publish path for per-machine duty histograms).
pub fn histogram_merge(name: &str, h: &Histogram) {
    with_registry(|reg| {
        reg.histograms.entry(name.to_owned()).or_default().merge(h);
    });
}

/// An immutable copy of the registry contents.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object (the `metrics` field of a
    /// run manifest).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::Int(i128::from(*v))))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Value::Float(*v)))
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Value::Array(
                        h.buckets
                            .iter()
                            .map(|&b| Value::Int(i128::from(b)))
                            .collect(),
                    );
                    let obj = ObjectBuilder::new()
                        .field("count", Value::Int(i128::from(h.count)))
                        .field("sum", Value::Int(i128::from(h.sum)))
                        .field("min", Value::Int(i128::from(h.min)))
                        .field("max", Value::Int(i128::from(h.max)))
                        .field("buckets", buckets)
                        .build();
                    (k.clone(), obj)
                })
                .collect(),
        );
        ObjectBuilder::new()
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
            .build()
    }

    /// Parses a snapshot back from the JSON produced by
    /// [`MetricsSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the ill-typed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let mut out = MetricsSnapshot::default();
        if let Some(Value::Object(fields)) = v.get("counters") {
            for (k, v) in fields {
                out.counters.insert(
                    k.clone(),
                    v.as_u64()
                        .ok_or_else(|| format!("counter '{k}' not a u64"))?,
                );
            }
        }
        if let Some(Value::Object(fields)) = v.get("gauges") {
            for (k, v) in fields {
                out.gauges.insert(
                    k.clone(),
                    v.as_f64()
                        .ok_or_else(|| format!("gauge '{k}' not a number"))?,
                );
            }
        }
        if let Some(Value::Object(fields)) = v.get("histograms") {
            for (k, v) in fields {
                let int = |key: &str| {
                    v.get(key)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("histogram '{k}' field '{key}' not a u64"))
                };
                let mut h = Histogram {
                    count: int("count")?,
                    sum: int("sum")?,
                    min: int("min")?,
                    max: int("max")?,
                    buckets: [0; HISTOGRAM_BUCKETS],
                };
                let buckets = v
                    .get("buckets")
                    .and_then(Value::as_array)
                    .ok_or_else(|| format!("histogram '{k}' missing buckets"))?;
                if buckets.len() != HISTOGRAM_BUCKETS {
                    return Err(format!(
                        "histogram '{k}' has {} buckets, expected {HISTOGRAM_BUCKETS}",
                        buckets.len()
                    ));
                }
                for (slot, b) in h.buckets.iter_mut().zip(buckets) {
                    *slot = b
                        .as_u64()
                        .ok_or_else(|| format!("histogram '{k}' bucket not a u64"))?;
                }
                out.histograms.insert(k.clone(), h);
            }
        }
        Ok(out)
    }
}

/// Copies out the current registry contents (empty when disabled).
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let reg = REGISTRY.lock().unwrap();
    reg.as_ref()
        .map_or_else(MetricsSnapshot::default, |reg| MetricsSnapshot {
            counters: reg.counters.clone(),
            gauges: reg.gauges.clone(),
            histograms: reg.histograms.clone(),
        })
}

/// Clears the registry (recording stays enabled if it was). Intended
/// for tests that need isolation from other tests' published metrics.
pub fn reset() {
    let mut reg = REGISTRY.lock().unwrap();
    if let Some(reg) = reg.as_mut() {
        *reg = Registry::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1030);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[11], 1); // 1024
        assert!((h.mean().unwrap() - 206.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [5, 9, 13] {
            a.observe(v);
            all.observe(v);
        }
        for v in [2, 70_000] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_round_trip_through_json() {
        enable();
        reset();
        counter_add("test.counter", 3);
        counter_add("test.counter", 4);
        gauge_set("test.gauge", 2.5);
        histogram_observe("test.hist", 17);
        let snap = snapshot();
        assert_eq!(snap.counters.get("test.counter"), Some(&7));
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        // Compare only the keys this test owns: other tests in the
        // binary may be publishing concurrently.
        assert_eq!(
            back.counters.get("test.counter"),
            snap.counters.get("test.counter")
        );
        assert_eq!(back.gauges.get("test.gauge"), snap.gauges.get("test.gauge"));
        assert_eq!(
            back.histograms.get("test.hist"),
            snap.histograms.get("test.hist")
        );
    }
}
