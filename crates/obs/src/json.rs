//! Minimal JSON value model, writer, and recursive-descent parser.
//!
//! The vendored `serde` is a no-op API stand-in (no registry access in
//! the build environment), so every machine-readable artifact in this
//! workspace is written by hand. This module centralizes the one piece
//! that must be *read back* as well: trace JSONL lines and run
//! manifests. Integers and floats are kept distinct (`i128` vs `f64`)
//! so `u64` cycle stamps round-trip exactly.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Any number without `.`, `e`, or `E` in its literal.
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|v| u64::try_from(v).ok())
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            #[allow(clippy::cast_precision_loss)]
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float(v) => out.push_str(&render_f64(*v)),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders an `f64` so it parses back as a float. JSON forbids bare
/// `NaN`/`inf` literals, so those render as self-describing strings.
#[must_use]
pub fn render_f64(v: f64) -> String {
    if v.is_nan() {
        // JSON has no NaN; pick a self-describing impossible literal.
        return "\"NaN\"".to_owned();
    }
    if v.is_infinite() {
        return if v > 0.0 {
            "\"inf\"".to_owned()
        } else {
            "\"-inf\"".to_owned()
        };
    }
    // `{}` is Rust's shortest round-trip form; force a `.0` onto
    // integral values so the reader keeps the int/float distinction.
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a message naming the byte offset and what was expected.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u{hex} escape"))?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; input is a &str so
                    // boundaries are valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let lit = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if float {
            lit.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number '{lit}': {e}"))
        } else {
            lit.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| format!("bad number '{lit}': {e}"))
        }
    }
}

/// Convenience: an object builder preserving field order.
#[derive(Default)]
pub struct ObjectBuilder {
    fields: Vec<(String, Value)>,
}

impl ObjectBuilder {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn field(mut self, key: &str, value: Value) -> Self {
        self.fields.push((key.to_owned(), value));
        self
    }

    #[must_use]
    pub fn build(self) -> Value {
        Value::Object(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("2e3").unwrap(), Value::Float(2000.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".to_owned()));
    }

    #[test]
    fn u64_round_trips_exactly() {
        let v = Value::Int(i128::from(u64::MAX));
        let back = parse(&v.render()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn nested_round_trip() {
        let doc = "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\\"y\",\"d\":-0.25}";
        let v = parse(doc).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn float_render_keeps_float_type() {
        let v = Value::Float(3.0);
        assert_eq!(v.render(), "3.0");
        assert_eq!(parse("3.0").unwrap(), v);
    }
}
