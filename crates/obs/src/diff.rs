//! First-divergence alignment of two trace streams.
//!
//! The differential harness runs the same program on two engines that
//! must agree event-for-event (the hybrid calendar engine vs the naive
//! per-cycle engine), captures both streams, and asks: *where is the
//! first event at which they disagree?* The answer — index, cycle,
//! tile, and a window of the common prefix for context — turns an
//! end-of-run counter mismatch into a localized, debuggable failure.

use std::fmt;

use crate::trace::TraceEvent;

/// How many trailing common-prefix events a [`Divergence`] keeps for
/// context.
pub const CONTEXT_EVENTS: usize = 5;

/// The first point at which two streams disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index into both streams of the first disagreement.
    pub index: usize,
    /// The event on the left stream, `None` if it ended early.
    pub left: Option<TraceEvent>,
    /// The event on the right stream, `None` if it ended early.
    pub right: Option<TraceEvent>,
    /// Up to [`CONTEXT_EVENTS`] common events immediately before the
    /// divergence, oldest first.
    pub context: Vec<TraceEvent>,
}

impl Divergence {
    /// The cycle stamp of the divergent event (left stream preferred).
    #[must_use]
    pub fn cycle(&self) -> Option<u64> {
        self.left
            .as_ref()
            .or(self.right.as_ref())
            .map(TraceEvent::cycle)
    }

    /// The tile/channel identity of the divergent event, if it has one.
    #[must_use]
    pub fn entity(&self) -> Option<u64> {
        self.left
            .as_ref()
            .or(self.right.as_ref())
            .and_then(TraceEvent::entity)
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "streams diverge at event #{}", self.index)?;
        if let Some(cycle) = self.cycle() {
            write!(f, "  first divergent event: cycle {cycle}")?;
            if let Some(tile) = self.entity() {
                write!(f, ", tile/channel {tile}")?;
            }
            writeln!(f)?;
        }
        if !self.context.is_empty() {
            writeln!(f, "  last {} common events:", self.context.len())?;
            for e in &self.context {
                writeln!(f, "    = {e}")?;
            }
        }
        match &self.left {
            Some(e) => writeln!(f, "    < {e}")?,
            None => writeln!(f, "    < (stream ended)")?,
        }
        match &self.right {
            Some(e) => writeln!(f, "    > {e}")?,
            None => writeln!(f, "    > (stream ended)")?,
        }
        Ok(())
    }
}

/// Finds the first index at which the two streams disagree (including
/// one ending before the other). `None` means they are identical.
#[must_use]
pub fn first_divergence(left: &[TraceEvent], right: &[TraceEvent]) -> Option<Divergence> {
    let common = left.len().min(right.len());
    let index = (0..common)
        .find(|&i| left[i] != right[i])
        .or_else(|| (left.len() != right.len()).then_some(common))?;
    Some(Divergence {
        index,
        left: left.get(index).cloned(),
        right: right.get(index).cloned(),
        context: left[index.saturating_sub(CONTEXT_EVENTS)..index].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EngineMode;

    fn ev(cycle: u64, tile: u32) -> TraceEvent {
        TraceEvent::Retire {
            cycle,
            tile,
            thread: 0,
            op: "Add".to_owned(),
            pc: cycle * 4,
        }
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        let a = vec![ev(1, 0), ev(2, 3)];
        assert_eq!(first_divergence(&a, &a.clone()), None);
        assert_eq!(first_divergence(&[], &[]), None);
    }

    #[test]
    fn finds_first_mismatch_with_context() {
        let a: Vec<_> = (0..10).map(|i| ev(i, 0)).collect();
        let mut b = a.clone();
        b[7] = ev(7, 4);
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.index, 7);
        assert_eq!(d.cycle(), Some(7));
        assert_eq!(d.entity(), Some(0));
        assert_eq!(d.context.len(), CONTEXT_EVENTS);
        assert_eq!(d.context.last(), Some(&ev(6, 0)));
        let text = d.to_string();
        assert!(text.contains("event #7"), "{text}");
        assert!(text.contains("cycle 7"), "{text}");
    }

    #[test]
    fn truncation_counts_as_divergence() {
        let a = vec![ev(1, 0), ev(2, 1)];
        let b = vec![ev(1, 0)];
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.left, Some(ev(2, 1)));
        assert_eq!(d.right, None);
        assert!(d.to_string().contains("(stream ended)"));
    }

    #[test]
    fn engine_events_without_entity_still_report_cycle() {
        let a = vec![TraceEvent::Engine {
            cycle: 42,
            mode: EngineMode::Dense,
        }];
        let d = first_divergence(&a, &[]).unwrap();
        assert_eq!(d.cycle(), Some(42));
        assert_eq!(d.entity(), None);
    }
}
