//! Structured trace events, ring-buffered collection, and JSONL codec.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero cost when disabled.** Every instrumentation site in the
//!    simulator is `if trace::active() { trace::emit(..) }`; [`active`]
//!    is one `Relaxed` load of a process-wide `AtomicBool` that is only
//!    `true` while a collector is installed. `reproduce` stdout must
//!    stay byte-identical and the NoC hot loop within noise of the
//!    pre-observability binary.
//! 2. **Deterministic per-thread streams.** Collectors are
//!    thread-local, so sweep workers never interleave events; each
//!    worker's ring flushes to the shared JSONL sink as one contiguous
//!    block when the collector is uninstalled (or the thread exits).
//! 3. **Bounded memory.** The collector is a ring: past `cap` events,
//!    the oldest are dropped and counted in `dropped`, never
//!    reallocated on the hot path.
//!
//! NoC emit sites have no cycle argument (the fabric API is
//! cycle-agnostic), so the machine publishes an *ambient cycle clock*
//! ([`set_cycle`]) that hop events read back.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::{self, ObjectBuilder, Value};

/// Subsystem filter bits for [`TraceSpec::mask`].
pub const SUB_RETIRE: u32 = 1 << 0;
/// Cache/directory transition events.
pub const SUB_CACHE: u32 = 1 << 1;
/// NoC flit-hop events.
pub const SUB_NOC: u32 = 1 << 2;
/// Board ADC conversion events.
pub const SUB_ADC: u32 = 1 << 3;
/// Cycle-engine mode-switch events.
pub const SUB_ENGINE: u32 = 1 << 4;
/// DVFS governor operating-point changes.
pub const SUB_GOVERNOR: u32 = 1 << 5;
/// Result-journal serve/append decisions.
pub const SUB_JOURNAL: u32 = 1 << 6;
/// All subsystems.
pub const SUB_ALL: u32 =
    SUB_RETIRE | SUB_CACHE | SUB_NOC | SUB_ADC | SUB_ENGINE | SUB_GOVERNOR | SUB_JOURNAL;

/// Which cache level an event concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheLevel {
    L1I,
    L1D,
    L15,
    L2,
    Memory,
}

impl CacheLevel {
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CacheLevel::L1I => "l1i",
            CacheLevel::L1D => "l1d",
            CacheLevel::L15 => "l15",
            CacheLevel::L2 => "l2",
            CacheLevel::Memory => "mem",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "l1i" => CacheLevel::L1I,
            "l1d" => CacheLevel::L1D,
            "l15" => CacheLevel::L15,
            "l2" => CacheLevel::L2,
            "mem" => CacheLevel::Memory,
            _ => return None,
        })
    }
}

/// What happened at that cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheKind {
    Hit,
    Fill,
    Upgrade,
    Invalidate,
    Writeback,
    Atomic,
}

impl CacheKind {
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CacheKind::Hit => "hit",
            CacheKind::Fill => "fill",
            CacheKind::Upgrade => "upgrade",
            CacheKind::Invalidate => "invalidate",
            CacheKind::Writeback => "writeback",
            CacheKind::Atomic => "atomic",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "hit" => CacheKind::Hit,
            "fill" => CacheKind::Fill,
            "upgrade" => CacheKind::Upgrade,
            "invalidate" => CacheKind::Invalidate,
            "writeback" => CacheKind::Writeback,
            "atomic" => CacheKind::Atomic,
            _ => return None,
        })
    }
}

/// Which cycle-engine regime the machine entered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// Event-driven ready-calendar scheduling.
    Calendar,
    /// Dense polling over the live core set.
    Dense,
    /// The reference per-cycle-polling engine.
    Naive,
}

impl EngineMode {
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            EngineMode::Calendar => "calendar",
            EngineMode::Dense => "dense",
            EngineMode::Naive => "naive",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "calendar" => EngineMode::Calendar,
            "dense" => EngineMode::Dense,
            "naive" => EngineMode::Naive,
            _ => return None,
        })
    }
}

/// What the result journal did with a grid point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalKind {
    /// The point was served from a recovered journal record.
    Serve,
    /// The point was computed and its record appended.
    Append,
}

impl JournalKind {
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            JournalKind::Serve => "serve",
            JournalKind::Append => "append",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "serve" => JournalKind::Serve,
            "append" => JournalKind::Append,
            _ => return None,
        })
    }
}

/// One structured trace event. Every variant carries its cycle stamp
/// and the identity (tile or monitor channel) it concerns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction left the pipeline on `tile`/`thread`.
    Retire {
        cycle: u64,
        tile: u32,
        thread: u32,
        op: String,
        pc: u64,
    },
    /// A cache or directory transition at `level` for `addr`, observed
    /// from `tile`.
    Cache {
        cycle: u64,
        tile: u32,
        level: CacheLevel,
        kind: CacheKind,
        addr: u64,
    },
    /// One flit-group hop `from -> to` on network `noc`.
    NocHop {
        cycle: u64,
        noc: u32,
        from: u32,
        to: u32,
        flits: u32,
    },
    /// One ADC conversion on the monitor channel seeded `channel`
    /// (the channel's stable identity). Power is kept in integer
    /// microwatts so the event round-trips exactly.
    Adc {
        channel: u64,
        sample: u64,
        microwatts: i64,
    },
    /// The cycle engine switched regime.
    Engine { cycle: u64, mode: EngineMode },
    /// The DVFS governor changed operating point. Frequency is kept in
    /// integer kilohertz and the junction temperature in integer
    /// millidegrees Celsius so the event round-trips exactly.
    Governor {
        cycle: u64,
        khz: u64,
        millicelsius: i64,
        policy: String,
    },
    /// The result journal served or appended a grid point. `key` is the
    /// point's content hash; the grid index doubles as the clock.
    Journal {
        section: String,
        index: u64,
        kind: JournalKind,
        key: u64,
    },
}

impl TraceEvent {
    /// The subsystem bit this event belongs to.
    #[must_use]
    pub const fn subsystem(&self) -> u32 {
        match self {
            TraceEvent::Retire { .. } => SUB_RETIRE,
            TraceEvent::Cache { .. } => SUB_CACHE,
            TraceEvent::NocHop { .. } => SUB_NOC,
            TraceEvent::Adc { .. } => SUB_ADC,
            TraceEvent::Engine { .. } => SUB_ENGINE,
            TraceEvent::Governor { .. } => SUB_GOVERNOR,
            TraceEvent::Journal { .. } => SUB_JOURNAL,
        }
    }

    /// The cycle stamp (ADC events use the sample index as their clock).
    #[must_use]
    pub const fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Retire { cycle, .. }
            | TraceEvent::Cache { cycle, .. }
            | TraceEvent::NocHop { cycle, .. }
            | TraceEvent::Engine { cycle, .. }
            | TraceEvent::Governor { cycle, .. } => *cycle,
            TraceEvent::Adc { sample, .. } => *sample,
            TraceEvent::Journal { index, .. } => *index,
        }
    }

    /// The tile (or `from`-tile / channel) identity, when one applies.
    #[must_use]
    pub fn entity(&self) -> Option<u64> {
        match self {
            TraceEvent::Retire { tile, .. } | TraceEvent::Cache { tile, .. } => {
                Some(u64::from(*tile))
            }
            TraceEvent::NocHop { from, .. } => Some(u64::from(*from)),
            TraceEvent::Adc { channel, .. } => Some(*channel),
            TraceEvent::Engine { .. }
            | TraceEvent::Governor { .. }
            | TraceEvent::Journal { .. } => None,
        }
    }

    /// Serializes to one compact JSONL line (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let v = match self {
            TraceEvent::Retire {
                cycle,
                tile,
                thread,
                op,
                pc,
            } => ObjectBuilder::new()
                .field("e", Value::Str("retire".to_owned()))
                .field("cycle", Value::Int(i128::from(*cycle)))
                .field("tile", Value::Int(i128::from(*tile)))
                .field("thread", Value::Int(i128::from(*thread)))
                .field("op", Value::Str(op.clone()))
                .field("pc", Value::Int(i128::from(*pc)))
                .build(),
            TraceEvent::Cache {
                cycle,
                tile,
                level,
                kind,
                addr,
            } => ObjectBuilder::new()
                .field("e", Value::Str("cache".to_owned()))
                .field("cycle", Value::Int(i128::from(*cycle)))
                .field("tile", Value::Int(i128::from(*tile)))
                .field("level", Value::Str(level.name().to_owned()))
                .field("kind", Value::Str(kind.name().to_owned()))
                .field("addr", Value::Int(i128::from(*addr)))
                .build(),
            TraceEvent::NocHop {
                cycle,
                noc,
                from,
                to,
                flits,
            } => ObjectBuilder::new()
                .field("e", Value::Str("noc".to_owned()))
                .field("cycle", Value::Int(i128::from(*cycle)))
                .field("noc", Value::Int(i128::from(*noc)))
                .field("from", Value::Int(i128::from(*from)))
                .field("to", Value::Int(i128::from(*to)))
                .field("flits", Value::Int(i128::from(*flits)))
                .build(),
            TraceEvent::Adc {
                channel,
                sample,
                microwatts,
            } => ObjectBuilder::new()
                .field("e", Value::Str("adc".to_owned()))
                .field("channel", Value::Int(i128::from(*channel)))
                .field("sample", Value::Int(i128::from(*sample)))
                .field("uw", Value::Int(i128::from(*microwatts)))
                .build(),
            TraceEvent::Engine { cycle, mode } => ObjectBuilder::new()
                .field("e", Value::Str("engine".to_owned()))
                .field("cycle", Value::Int(i128::from(*cycle)))
                .field("mode", Value::Str(mode.name().to_owned()))
                .build(),
            TraceEvent::Governor {
                cycle,
                khz,
                millicelsius,
                policy,
            } => ObjectBuilder::new()
                .field("e", Value::Str("governor".to_owned()))
                .field("cycle", Value::Int(i128::from(*cycle)))
                .field("khz", Value::Int(i128::from(*khz)))
                .field("mc", Value::Int(i128::from(*millicelsius)))
                .field("policy", Value::Str(policy.clone()))
                .build(),
            TraceEvent::Journal {
                section,
                index,
                kind,
                key,
            } => ObjectBuilder::new()
                .field("e", Value::Str("journal".to_owned()))
                .field("section", Value::Str(section.clone()))
                .field("index", Value::Int(i128::from(*index)))
                .field("kind", Value::Str(kind.name().to_owned()))
                .field("key", Value::Int(i128::from(*key)))
                .build(),
        };
        v.render()
    }

    /// Parses one JSONL line produced by [`TraceEvent::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/ill-typed field.
    pub fn from_jsonl(line: &str) -> Result<Self, String> {
        let v = json::parse(line)?;
        let kind = v
            .get("e")
            .and_then(Value::as_str)
            .ok_or("missing event kind 'e'")?;
        let int = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer field '{key}' in {kind} event"))
        };
        let narrow = |key: &str| -> Result<u32, String> {
            u32::try_from(int(key)?).map_err(|_| format!("field '{key}' out of u32 range"))
        };
        let text = |key: &str| -> Result<&str, String> {
            v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing string field '{key}' in {kind} event"))
        };
        match kind {
            "retire" => Ok(TraceEvent::Retire {
                cycle: int("cycle")?,
                tile: narrow("tile")?,
                thread: narrow("thread")?,
                op: text("op")?.to_owned(),
                pc: int("pc")?,
            }),
            "cache" => Ok(TraceEvent::Cache {
                cycle: int("cycle")?,
                tile: narrow("tile")?,
                level: CacheLevel::parse(text("level")?)
                    .ok_or_else(|| format!("unknown cache level '{}'", text("level").unwrap()))?,
                kind: CacheKind::parse(text("kind")?)
                    .ok_or_else(|| format!("unknown cache kind '{}'", text("kind").unwrap()))?,
                addr: int("addr")?,
            }),
            "noc" => Ok(TraceEvent::NocHop {
                cycle: int("cycle")?,
                noc: narrow("noc")?,
                from: narrow("from")?,
                to: narrow("to")?,
                flits: narrow("flits")?,
            }),
            "adc" => Ok(TraceEvent::Adc {
                channel: int("channel")?,
                sample: int("sample")?,
                microwatts: v
                    .get("uw")
                    .and_then(Value::as_i128)
                    .and_then(|x| i64::try_from(x).ok())
                    .ok_or("missing integer field 'uw' in adc event")?,
            }),
            "engine" => Ok(TraceEvent::Engine {
                cycle: int("cycle")?,
                mode: EngineMode::parse(text("mode")?)
                    .ok_or_else(|| format!("unknown engine mode '{}'", text("mode").unwrap()))?,
            }),
            "governor" => Ok(TraceEvent::Governor {
                cycle: int("cycle")?,
                khz: int("khz")?,
                millicelsius: v
                    .get("mc")
                    .and_then(Value::as_i128)
                    .and_then(|x| i64::try_from(x).ok())
                    .ok_or("missing integer field 'mc' in governor event")?,
                policy: text("policy")?.to_owned(),
            }),
            "journal" => Ok(TraceEvent::Journal {
                section: text("section")?.to_owned(),
                index: int("index")?,
                kind: JournalKind::parse(text("kind")?)
                    .ok_or_else(|| format!("unknown journal kind '{}'", text("kind").unwrap()))?,
                key: int("key")?,
            }),
            other => Err(format!("unknown event kind '{other}'")),
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Retire {
                cycle,
                tile,
                thread,
                op,
                pc,
            } => write!(
                f,
                "cycle {cycle:>8}  tile {tile:>2}.{thread}  retire {op} @pc={pc}"
            ),
            TraceEvent::Cache {
                cycle,
                tile,
                level,
                kind,
                addr,
            } => write!(
                f,
                "cycle {cycle:>8}  tile {tile:>2}    cache {} {} addr={addr:#x}",
                level.name(),
                kind.name()
            ),
            TraceEvent::NocHop {
                cycle,
                noc,
                from,
                to,
                flits,
            } => write!(
                f,
                "cycle {cycle:>8}  tile {from:>2}    noc{noc} hop ->{to} ({flits} flits)"
            ),
            TraceEvent::Adc {
                channel,
                sample,
                microwatts,
            } => write!(
                f,
                "sample {sample:>7}  chan {channel:#x}  adc {} uW",
                microwatts
            ),
            TraceEvent::Engine { cycle, mode } => {
                write!(f, "cycle {cycle:>8}  engine -> {}", mode.name())
            }
            TraceEvent::Governor {
                cycle,
                khz,
                millicelsius,
                policy,
            } => write!(
                f,
                "cycle {cycle:>8}  governor {policy} -> {:.2} MHz @ {:.1} C",
                *khz as f64 / 1_000.0,
                *millicelsius as f64 / 1_000.0
            ),
            TraceEvent::Journal {
                section,
                index,
                kind,
                key,
            } => write!(
                f,
                "point {index:>8}  {section:<8} journal {} key={key:#018x}",
                kind.name()
            ),
        }
    }
}

/// Encodes a slice of events as JSONL (one event per line).
#[must_use]
pub fn encode_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

/// Decodes a JSONL document (blank lines skipped) back into events.
///
/// # Errors
///
/// Returns the 1-based line number and the codec error for the first
/// undecodable line.
pub fn decode_jsonl(doc: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(TraceEvent::from_jsonl(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// A parsed `--trace SPEC`. Grammar (comma-separated parts, echoing the
/// `FaultPlan` spec style):
///
/// ```text
/// SPEC  := PART {"," PART}
/// PART  := "all" | "retire" | "cache" | "noc" | "adc" | "engine" | "governor" | "journal"
///                             subsystem enables
///        | "out=PATH"       JSONL sink path   (default piton-trace.jsonl)
///        | "cap=N"          per-thread ring capacity (default 65536)
///        | "tile=N"         keep only events for tile/entity N
/// ```
///
/// Subsystem parts are additive; a spec with no subsystem part enables
/// all of them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    pub mask: u32,
    pub out: String,
    pub capacity: usize,
    pub tile: Option<u64>,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            mask: SUB_ALL,
            out: "piton-trace.jsonl".to_owned(),
            capacity: 65_536,
            tile: None,
        }
    }
}

impl TraceSpec {
    /// Parses the spec grammar above.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending part.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = TraceSpec {
            mask: 0,
            ..TraceSpec::default()
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part {
                "all" => out.mask |= SUB_ALL,
                "retire" => out.mask |= SUB_RETIRE,
                "cache" => out.mask |= SUB_CACHE,
                "noc" => out.mask |= SUB_NOC,
                "adc" => out.mask |= SUB_ADC,
                "engine" => out.mask |= SUB_ENGINE,
                "governor" => out.mask |= SUB_GOVERNOR,
                "journal" => out.mask |= SUB_JOURNAL,
                _ => {
                    let (key, value) = part
                        .split_once('=')
                        .ok_or_else(|| format!("unknown trace spec part '{part}'"))?;
                    match key {
                        "out" => out.out = value.to_owned(),
                        "cap" => {
                            out.capacity = value
                                .parse()
                                .map_err(|e| format!("bad cap '{value}': {e}"))?;
                        }
                        "tile" => {
                            out.tile = Some(
                                value
                                    .parse()
                                    .map_err(|e| format!("bad tile '{value}': {e}"))?,
                            );
                        }
                        _ => return Err(format!("unknown trace spec key '{key}'")),
                    }
                }
            }
        }
        if out.mask == 0 {
            out.mask = SUB_ALL;
        }
        if out.capacity == 0 {
            return Err("trace ring capacity must be > 0".to_owned());
        }
        Ok(out)
    }
}

/// Process-wide gate: `true` only while at least one thread has a
/// collector installed. Emit sites branch over this before doing any
/// event construction.
static TRACE_ACTIVE: AtomicBool = AtomicBool::new(false);
/// Number of threads with a live collector (guards `TRACE_ACTIVE`).
static COLLECTORS: Mutex<u32> = Mutex::new(0);
/// The shared JSONL sink collectors flush into (when file-backed
/// tracing is configured via [`install_sink`]).
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

struct Sink {
    path: String,
    lines: String,
    dropped: u64,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    static AMBIENT_CYCLE: Cell<u64> = const { Cell::new(0) };
}

struct Collector {
    mask: u32,
    tile: Option<u64>,
    cap: usize,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
    /// Flush to the global [`SINK`] on uninstall (file-backed mode).
    to_sink: bool,
}

/// Is any collector installed on this process? One relaxed load; the
/// entire cost of the trace layer when disabled.
#[inline(always)]
#[must_use]
pub fn active() -> bool {
    TRACE_ACTIVE.load(Ordering::Relaxed)
}

/// Publishes the ambient cycle clock used by emit sites whose call
/// path has no cycle argument (NoC hops). Call only under
/// `if active()`.
#[inline]
pub fn set_cycle(now: u64) {
    AMBIENT_CYCLE.with(|c| c.set(now));
}

/// Reads back the ambient cycle clock.
#[inline]
#[must_use]
pub fn ambient_cycle() -> u64 {
    AMBIENT_CYCLE.with(Cell::get)
}

fn add_collector() {
    let mut n = COLLECTORS.lock().unwrap();
    *n += 1;
    TRACE_ACTIVE.store(true, Ordering::Relaxed);
}

fn remove_collector() {
    let mut n = COLLECTORS.lock().unwrap();
    *n = n.saturating_sub(1);
    if *n == 0 {
        TRACE_ACTIVE.store(false, Ordering::Relaxed);
    }
}

/// Installs a ring collector on the current thread. Returns `false`
/// (and changes nothing) if one is already installed.
pub fn install(spec: &TraceSpec, to_sink: bool) -> bool {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if slot.is_some() {
            return false;
        }
        *slot = Some(Collector {
            mask: spec.mask,
            tile: spec.tile,
            cap: spec.capacity,
            ring: VecDeque::with_capacity(spec.capacity.min(4096)),
            dropped: 0,
            to_sink,
        });
        add_collector();
        true
    })
}

/// Uninstalls the current thread's collector, returning its buffered
/// events in emit order and the count of ring-dropped events. If the
/// collector was sink-bound, the events are also appended to the
/// global sink buffer.
#[must_use]
pub fn uninstall() -> (Vec<TraceEvent>, u64) {
    let taken = COLLECTOR.with(|c| c.borrow_mut().take());
    let Some(col) = taken else {
        return (Vec::new(), 0);
    };
    remove_collector();
    let events: Vec<TraceEvent> = col.ring.into_iter().collect();
    if col.to_sink {
        let mut sink = SINK.lock().unwrap();
        if let Some(sink) = sink.as_mut() {
            for e in &events {
                sink.lines.push_str(&e.to_jsonl());
                sink.lines.push('\n');
            }
            sink.dropped += col.dropped;
        }
    }
    (events, col.dropped)
}

/// Emits one event into the current thread's collector, applying its
/// subsystem mask and tile filter. No-op without a collector.
pub fn emit(event: TraceEvent) {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let Some(col) = slot.as_mut() else { return };
        if col.mask & event.subsystem() == 0 {
            return;
        }
        if let (Some(want), Some(got)) = (col.tile, event.entity()) {
            if want != got {
                return;
            }
        }
        if col.ring.len() == col.cap {
            col.ring.pop_front();
            col.dropped += 1;
        }
        col.ring.push_back(event);
    });
}

/// Spec that short-lived worker threads (the sweep engine's) adopt via
/// [`worker_scope`] while file-backed tracing is configured.
static WORKER_SPEC: Mutex<Option<TraceSpec>> = Mutex::new(None);

/// Publishes (or clears) the collector spec worker threads should
/// adopt. Set by the CLI together with [`install_sink`].
pub fn set_worker_spec(spec: Option<TraceSpec>) {
    *WORKER_SPEC.lock().unwrap() = spec;
}

/// Runs `body` with a sink-bound collector installed on this thread iff
/// tracing is live and a worker spec is published; otherwise runs
/// `body` untouched. The sweep engine wraps each worker thread's
/// point-loop in this so events emitted off the main thread still reach
/// the JSONL sink.
pub fn worker_scope<T>(body: impl FnOnce() -> T) -> T {
    if !active() {
        return body();
    }
    let spec = WORKER_SPEC.lock().unwrap().clone();
    let Some(spec) = spec else {
        return body();
    };
    if !install(&spec, true) {
        return body();
    }
    // Flush to the sink even if a grid point panics (the runner's
    // catch_unwind will resume it).
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            let _ = uninstall();
        }
    }
    let _guard = Guard;
    body()
}

/// Configures the process-wide JSONL sink `uninstall` flushes into.
/// The file is written by [`flush_sink_to_file`].
pub fn install_sink(path: &str) {
    let mut sink = SINK.lock().unwrap();
    *sink = Some(Sink {
        path: path.to_owned(),
        lines: String::new(),
        dropped: 0,
    });
}

/// Writes all sink-buffered JSONL lines to the sink path and clears
/// the sink. Returns `(path, line_count, ring_dropped)` if a sink was
/// installed.
///
/// # Errors
///
/// Propagates the underlying I/O error annotated with the path.
pub fn flush_sink_to_file() -> Result<Option<(String, usize, u64)>, String> {
    let taken = SINK.lock().unwrap().take();
    let Some(sink) = taken else { return Ok(None) };
    let count = sink.lines.lines().count();
    std::fs::write(&sink.path, &sink.lines)
        .map_err(|e| format!("writing trace sink {}: {e}", sink.path))?;
    Ok(Some((sink.path, count, sink.dropped)))
}

/// Runs `body` with a fresh in-memory collector installed on this
/// thread and returns `(body result, captured events)`. The primary
/// capture entry point for tests and `trace_diff`.
///
/// # Panics
///
/// Panics if a collector is already installed on this thread.
pub fn capture<T>(spec: &TraceSpec, body: impl FnOnce() -> T) -> (T, Vec<TraceEvent>) {
    assert!(
        install(spec, false),
        "trace::capture: collector already installed on this thread"
    );
    // Ensure the collector is removed even if `body` panics, so a
    // failing test doesn't poison later captures on the same thread.
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            let _ = uninstall();
        }
    }
    let guard = Guard;
    let out = body();
    std::mem::forget(guard);
    let (events, _) = uninstall();
    (out, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Retire {
                cycle: 12,
                tile: 3,
                thread: 1,
                op: "Add".to_owned(),
                pc: 64,
            },
            TraceEvent::Cache {
                cycle: 15,
                tile: 3,
                level: CacheLevel::L15,
                kind: CacheKind::Fill,
                addr: 0x80_0040,
            },
            TraceEvent::NocHop {
                cycle: 16,
                noc: 2,
                from: 3,
                to: 8,
                flits: 5,
            },
            TraceEvent::Adc {
                channel: 0xdead_beef,
                sample: 7,
                microwatts: -1_250,
            },
            TraceEvent::Engine {
                cycle: 20,
                mode: EngineMode::Dense,
            },
            TraceEvent::Journal {
                section: "epi".to_owned(),
                index: 11,
                kind: JournalKind::Serve,
                key: 0x0123_4567_89ab_cdef,
            },
        ]
    }

    #[test]
    fn jsonl_round_trip() {
        let events = sample_events();
        let doc = encode_jsonl(&events);
        assert_eq!(decode_jsonl(&doc).unwrap(), events);
    }

    #[test]
    fn capture_respects_mask_and_tile() {
        let spec = TraceSpec::parse("retire,noc,tile=3").unwrap();
        let ((), events) = capture(&spec, || {
            for e in sample_events() {
                emit(e);
            }
        });
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], TraceEvent::Retire { tile: 3, .. }));
        assert!(matches!(events[1], TraceEvent::NocHop { from: 3, .. }));
    }

    #[test]
    fn ring_drops_oldest() {
        let spec = TraceSpec::parse("engine,cap=2").unwrap();
        let ((), events) = capture(&spec, || {
            for cycle in 0..5 {
                emit(TraceEvent::Engine {
                    cycle,
                    mode: EngineMode::Calendar,
                });
            }
        });
        assert_eq!(
            events
                .iter()
                .map(super::TraceEvent::cycle)
                .collect::<Vec<_>>(),
            vec![3, 4]
        );
    }

    #[test]
    fn active_flag_set_during_capture() {
        // Other test threads may also hold collectors, so only the
        // "set while captured" direction is assertable here.
        let spec = TraceSpec::default();
        let ((), _) = capture(&spec, || assert!(active()));
    }

    #[test]
    fn spec_parse_defaults_and_errors() {
        let spec = TraceSpec::parse("out=/tmp/t.jsonl").unwrap();
        assert_eq!(spec.mask, SUB_ALL);
        assert_eq!(spec.out, "/tmp/t.jsonl");
        assert!(TraceSpec::parse("bogus").is_err());
        assert!(TraceSpec::parse("cap=0").is_err());
        assert!(TraceSpec::parse("tile=x").is_err());
        assert_eq!(TraceSpec::parse("journal").unwrap().mask, SUB_JOURNAL);
    }
}
