//! Observability layer for the Piton power-characterization stack.
//!
//! The source paper is a measurement study: every published figure rests
//! on trusting intermediate observations (per-rail sample windows, ADC
//! conversions, activity counters), not just final Joules. This crate
//! gives the simulator the same property. It provides:
//!
//! * [`trace`] — a structured, ring-buffered event trace (instruction
//!   retirement, cache/directory transitions, NoC flit hops, ADC
//!   samples, engine-mode switches), zero-cost when disabled: every
//!   emit site is gated on one relaxed atomic load. Events serialize to
//!   compact JSONL and parse back losslessly.
//! * [`metrics`] — a process-wide registry of counters, gauges and
//!   histograms, snapshotted into machine-readable run manifests.
//! * [`manifest`] — the `piton-run-manifest/v1` document `reproduce`
//!   emits alongside its tables: per-section wall/busy time, sweep and
//!   retry tallies, holes, and a metrics snapshot.
//! * [`diff`] — first-divergence alignment of two event streams, the
//!   core of the golden-trace differential harness (`trace_diff`).
//! * [`json`] — the minimal JSON reader/writer everything above shares
//!   (the vendored `serde` is an offline API stand-in and performs no
//!   serialization; see `vendor/serde/src/lib.rs`).
//!
//! The trace hot-path contract: when no collector is installed,
//! [`trace::active`] is a single `Relaxed` atomic load returning
//! `false`, and every instrumentation site in `piton-sim`/`piton-board`
//! branches over it before constructing an event.

pub mod diff;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod trace;

pub use diff::{first_divergence, Divergence};
pub use manifest::{HoleRecord, RunManifest, SectionRecord, MANIFEST_SCHEMA};
pub use metrics::{snapshot, MetricsSnapshot};
pub use trace::{TraceEvent, TraceSpec};
