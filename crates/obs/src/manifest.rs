//! The `piton-run-manifest/v1` document: a machine-readable record of
//! one `reproduce` invocation, emitted alongside the human tables.
//!
//! Schema (all times in seconds as JSON floats, counts as integers):
//!
//! ```text
//! {
//!   "schema": "piton-run-manifest/v1",
//!   "fidelity": "quick" | "full",
//!   "jobs": <usize>,
//!   "fault_plan": null | "<spec string>",
//!   "fault_effects": "<spec string>",    // only present when the plan affects results
//!   "governor": "<policy label>",        // only present on governed runs
//!   "backend": "cycle" | "analytic" | "both",
//!                                        // only present when a backend was chosen
//!   "journal": { "served": n, "appended": n, "recovered": n, "torn": n },
//!                                        // only present on --journal runs
//!   "calibration": {                     // only present on analytic/both runs
//!     "probes": n,
//!     "residuals": [ { "rail": "...", "max_rel": f, "mean_rel": f } ],
//!     "worst": { "probe": "...", "rail": "...", "rel": f },   // omitted when empty
//!     "coefficients": [ { "name": "...", "pj": f } ]
//!   },
//!   "total_wall_s": <f64>,
//!   "sections": [
//!     { "title": "...", "wall_s": f, "busy_s": f, "sweeps": n, "points": n }
//!   ],
//!   "holes": [
//!     { "section": "...", "index": n, "point": "...", "attempts": n, "error": "..." }
//!   ],
//!   "metrics": { "counters": {..}, "gauges": {..}, "histograms": {..} }
//! }
//! ```

use piton_arch::error::PitonError;

use crate::json::{self, ObjectBuilder, Value};
use crate::metrics::MetricsSnapshot;

/// The schema identifier every valid manifest must carry.
pub const MANIFEST_SCHEMA: &str = "piton-run-manifest/v1";

/// The schema identifier of the deterministic projection
/// ([`RunManifest::deterministic_json`]).
pub const DETERMINISTIC_SCHEMA: &str = "piton-run-manifest/v1-deterministic";

/// Per-section sweep accounting (from the runner's `SweepStats`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SectionRecord {
    pub title: String,
    pub wall_s: f64,
    pub busy_s: f64,
    pub sweeps: u64,
    pub points: u64,
}

/// One permanently-failed sweep point (mirrors `report::Hole`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HoleRecord {
    pub section: String,
    pub index: usize,
    pub point: String,
    pub attempts: u32,
    pub error: String,
}

/// Auto-calibration record of an analytic-backend run: fit quality and
/// the fitted coefficient vector, so a manifest is enough to audit (or
/// reconstruct) the closed-form model that produced the numbers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CalibrationRecord {
    /// Number of cycle-level probes fitted against.
    pub probes: u64,
    /// Per-rail fit residuals: `(rail, max relative, mean relative)`.
    pub residuals: Vec<(String, f64, f64)>,
    /// The single worst probe: `(probe label, rail, relative residual)`.
    pub worst: Option<(String, String, f64)>,
    /// Fitted nominal energies: `(rail-qualified feature name, pJ)`.
    pub coefficients: Vec<(String, f64)>,
}

/// Result-journal accounting for a durable (`--journal`) run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Points served from the journal without recomputation.
    pub served: u64,
    /// Points computed this run and appended to the journal.
    pub appended: u64,
    /// Complete records recovered from a pre-existing journal file.
    pub recovered: u64,
    /// Torn/corrupt trailing bytes discarded during recovery.
    pub torn: u64,
}

/// A complete run manifest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunManifest {
    pub fidelity: String,
    pub jobs: usize,
    pub fault_plan: Option<String>,
    /// The result-affecting subset of `fault_plan` (crash points
    /// stripped, effect-free plans normalized to `None`) — what the
    /// deterministic projection keys on. Omitted when `None` so
    /// historical manifests stay byte-identical.
    pub fault_effects: Option<String>,
    /// DVFS governor policy label, when a governor drove the run. The
    /// field is *omitted* (not null) on ungoverned runs so historical
    /// manifests stay byte-identical.
    pub governor: Option<String>,
    /// Which engine produced the numbers (`"cycle"`, `"analytic"`,
    /// `"both"`). Omitted when `None` so pre-backend manifests — and
    /// plain cycle runs — stay byte-identical.
    pub backend: Option<String>,
    /// Result-journal accounting, when the run was durable. Omitted
    /// when `None` for the same byte-compatibility reason.
    pub journal: Option<JournalStats>,
    /// Auto-calibration record, when the analytic backend ran. Omitted
    /// when `None`.
    pub calibration: Option<CalibrationRecord>,
    pub total_wall_s: f64,
    pub sections: Vec<SectionRecord>,
    pub holes: Vec<HoleRecord>,
    pub metrics: MetricsSnapshot,
}

impl RunManifest {
    /// Renders the manifest as a JSON document (with trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let sections = Value::Array(
            self.sections
                .iter()
                .map(|s| {
                    ObjectBuilder::new()
                        .field("title", Value::Str(s.title.clone()))
                        .field("wall_s", Value::Float(s.wall_s))
                        .field("busy_s", Value::Float(s.busy_s))
                        .field("sweeps", Value::Int(i128::from(s.sweeps)))
                        .field("points", Value::Int(i128::from(s.points)))
                        .build()
                })
                .collect(),
        );
        let holes = Value::Array(
            self.holes
                .iter()
                .map(|h| {
                    ObjectBuilder::new()
                        .field("section", Value::Str(h.section.clone()))
                        .field("index", Value::Int(h.index as i128))
                        .field("point", Value::Str(h.point.clone()))
                        .field("attempts", Value::Int(i128::from(h.attempts)))
                        .field("error", Value::Str(h.error.clone()))
                        .build()
                })
                .collect(),
        );
        let mut builder = ObjectBuilder::new()
            .field("schema", Value::Str(MANIFEST_SCHEMA.to_owned()))
            .field("fidelity", Value::Str(self.fidelity.clone()))
            .field("jobs", Value::Int(self.jobs as i128))
            .field(
                "fault_plan",
                self.fault_plan
                    .as_ref()
                    .map_or(Value::Null, |p| Value::Str(p.clone())),
            );
        if let Some(e) = &self.fault_effects {
            builder = builder.field("fault_effects", Value::Str(e.clone()));
        }
        if let Some(g) = &self.governor {
            builder = builder.field("governor", Value::Str(g.clone()));
        }
        if let Some(b) = &self.backend {
            builder = builder.field("backend", Value::Str(b.clone()));
        }
        if let Some(j) = &self.journal {
            builder = builder.field(
                "journal",
                ObjectBuilder::new()
                    .field("served", Value::Int(i128::from(j.served)))
                    .field("appended", Value::Int(i128::from(j.appended)))
                    .field("recovered", Value::Int(i128::from(j.recovered)))
                    .field("torn", Value::Int(i128::from(j.torn)))
                    .build(),
            );
        }
        if let Some(c) = &self.calibration {
            let residuals = Value::Array(
                c.residuals
                    .iter()
                    .map(|(rail, max_rel, mean_rel)| {
                        ObjectBuilder::new()
                            .field("rail", Value::Str(rail.clone()))
                            .field("max_rel", Value::Float(*max_rel))
                            .field("mean_rel", Value::Float(*mean_rel))
                            .build()
                    })
                    .collect(),
            );
            let coefficients = Value::Array(
                c.coefficients
                    .iter()
                    .map(|(name, pj)| {
                        ObjectBuilder::new()
                            .field("name", Value::Str(name.clone()))
                            .field("pj", Value::Float(*pj))
                            .build()
                    })
                    .collect(),
            );
            let mut cb = ObjectBuilder::new()
                .field("probes", Value::Int(i128::from(c.probes)))
                .field("residuals", residuals);
            if let Some((probe, rail, rel)) = &c.worst {
                cb = cb.field(
                    "worst",
                    ObjectBuilder::new()
                        .field("probe", Value::Str(probe.clone()))
                        .field("rail", Value::Str(rail.clone()))
                        .field("rel", Value::Float(*rel))
                        .build(),
                );
            }
            builder = builder.field(
                "calibration",
                cb.field("coefficients", coefficients).build(),
            );
        }
        let doc = builder
            .field("total_wall_s", Value::Float(self.total_wall_s))
            .field("sections", sections)
            .field("holes", holes)
            .field("metrics", self.metrics.to_json())
            .build();
        let mut out = doc.render();
        out.push('\n');
        out
    }

    /// Renders the *deterministic projection* of the manifest: only the
    /// fields two byte-equivalent runs must agree on — schema,
    /// fidelity, fault effects, governor, per-section sweep
    /// accounting (titles, sweep and point counts — no wall-clock
    /// times) and holes. Journal accounting, timings, engine metrics
    /// *and the jobs level* are excluded: results are jobs-invariant,
    /// and an interrupted-then-resumed run must produce a projection
    /// byte-identical to an uninterrupted one at any `--jobs` — the
    /// contract the crash/resume harness diffs.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let sections = Value::Array(
            self.sections
                .iter()
                .map(|s| {
                    ObjectBuilder::new()
                        .field("title", Value::Str(s.title.clone()))
                        .field("sweeps", Value::Int(i128::from(s.sweeps)))
                        .field("points", Value::Int(i128::from(s.points)))
                        .build()
                })
                .collect(),
        );
        let holes = Value::Array(
            self.holes
                .iter()
                .map(|h| {
                    ObjectBuilder::new()
                        .field("section", Value::Str(h.section.clone()))
                        .field("index", Value::Int(h.index as i128))
                        .field("point", Value::Str(h.point.clone()))
                        .field("attempts", Value::Int(i128::from(h.attempts)))
                        .field("error", Value::Str(h.error.clone()))
                        .build()
                })
                .collect(),
        );
        let mut builder = ObjectBuilder::new()
            .field("schema", Value::Str(DETERMINISTIC_SCHEMA.to_owned()))
            .field("fidelity", Value::Str(self.fidelity.clone()))
            .field(
                "fault_effects",
                self.fault_effects
                    .as_ref()
                    .map_or(Value::Null, |e| Value::Str(e.clone())),
            );
        if let Some(g) = &self.governor {
            builder = builder.field("governor", Value::Str(g.clone()));
        }
        if let Some(b) = &self.backend {
            builder = builder.field("backend", Value::Str(b.clone()));
        }
        let doc = builder
            .field("sections", sections)
            .field("holes", holes)
            .build();
        let mut out = doc.render();
        out.push('\n');
        out
    }

    /// Parses and validates a manifest document.
    ///
    /// Total over arbitrary input — truncated, torn, or garbage bytes
    /// produce a structured error, never a panic.
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] naming what failed: malformed JSON, a
    /// wrong/missing schema identifier, or ill-typed fields.
    pub fn from_json(doc: &str) -> Result<Self, PitonError> {
        Self::from_json_inner(doc).map_err(|e| PitonError::codec(format!("run manifest: {e}")))
    }

    fn from_json_inner(doc: &str) -> Result<Self, String> {
        let v = json::parse(doc)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("manifest missing 'schema'")?;
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "schema mismatch: got '{schema}', expected '{MANIFEST_SCHEMA}'"
            ));
        }
        let text = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("manifest missing string '{key}'"))
        };
        let float = |val: &Value, key: &str| -> Result<f64, String> {
            val.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing number '{key}'"))
        };
        let mut out = RunManifest {
            fidelity: text("fidelity")?,
            jobs: v
                .get("jobs")
                .and_then(Value::as_u64)
                .ok_or("manifest missing 'jobs'")? as usize,
            fault_plan: match v.get("fault_plan") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(_) => return Err("'fault_plan' must be null or a string".to_owned()),
            },
            fault_effects: match v.get("fault_effects") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(_) => return Err("'fault_effects' must be a string".to_owned()),
            },
            governor: match v.get("governor") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(_) => return Err("'governor' must be a string".to_owned()),
            },
            backend: match v.get("backend") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(_) => return Err("'backend' must be a string".to_owned()),
            },
            calibration: match v.get("calibration") {
                None | Some(Value::Null) => None,
                Some(c) => {
                    let mut record = CalibrationRecord {
                        probes: c
                            .get("probes")
                            .and_then(Value::as_u64)
                            .ok_or("calibration missing 'probes'")?,
                        ..CalibrationRecord::default()
                    };
                    for r in c
                        .get("residuals")
                        .and_then(Value::as_array)
                        .ok_or("calibration missing 'residuals'")?
                    {
                        record.residuals.push((
                            r.get("rail")
                                .and_then(Value::as_str)
                                .ok_or("residual missing 'rail'")?
                                .to_owned(),
                            r.get("max_rel")
                                .and_then(Value::as_f64)
                                .ok_or("residual missing 'max_rel'")?,
                            r.get("mean_rel")
                                .and_then(Value::as_f64)
                                .ok_or("residual missing 'mean_rel'")?,
                        ));
                    }
                    record.worst = match c.get("worst") {
                        None | Some(Value::Null) => None,
                        Some(w) => Some((
                            w.get("probe")
                                .and_then(Value::as_str)
                                .ok_or("worst missing 'probe'")?
                                .to_owned(),
                            w.get("rail")
                                .and_then(Value::as_str)
                                .ok_or("worst missing 'rail'")?
                                .to_owned(),
                            w.get("rel")
                                .and_then(Value::as_f64)
                                .ok_or("worst missing 'rel'")?,
                        )),
                    };
                    for k in c
                        .get("coefficients")
                        .and_then(Value::as_array)
                        .ok_or("calibration missing 'coefficients'")?
                    {
                        record.coefficients.push((
                            k.get("name")
                                .and_then(Value::as_str)
                                .ok_or("coefficient missing 'name'")?
                                .to_owned(),
                            k.get("pj")
                                .and_then(Value::as_f64)
                                .ok_or("coefficient missing 'pj'")?,
                        ));
                    }
                    Some(record)
                }
            },
            journal: match v.get("journal") {
                None | Some(Value::Null) => None,
                Some(j) => {
                    let count = |key: &str| -> Result<u64, String> {
                        j.get(key)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("journal missing count '{key}'"))
                    };
                    Some(JournalStats {
                        served: count("served")?,
                        appended: count("appended")?,
                        recovered: count("recovered")?,
                        torn: count("torn")?,
                    })
                }
            },
            total_wall_s: float(&v, "total_wall_s")?,
            ..RunManifest::default()
        };
        for s in v
            .get("sections")
            .and_then(Value::as_array)
            .ok_or("manifest missing 'sections'")?
        {
            out.sections.push(SectionRecord {
                title: s
                    .get("title")
                    .and_then(Value::as_str)
                    .ok_or("section missing 'title'")?
                    .to_owned(),
                wall_s: float(s, "wall_s")?,
                busy_s: float(s, "busy_s")?,
                sweeps: s
                    .get("sweeps")
                    .and_then(Value::as_u64)
                    .ok_or("section missing 'sweeps'")?,
                points: s
                    .get("points")
                    .and_then(Value::as_u64)
                    .ok_or("section missing 'points'")?,
            });
        }
        for h in v
            .get("holes")
            .and_then(Value::as_array)
            .ok_or("manifest missing 'holes'")?
        {
            let txt = |key: &str| -> Result<String, String> {
                h.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("hole missing '{key}'"))
            };
            out.holes.push(HoleRecord {
                section: txt("section")?,
                index: h
                    .get("index")
                    .and_then(Value::as_u64)
                    .ok_or("hole missing 'index'")? as usize,
                point: txt("point")?,
                attempts: h
                    .get("attempts")
                    .and_then(Value::as_u64)
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or("hole missing 'attempts'")?,
                error: txt("error")?,
            });
        }
        out.metrics =
            MetricsSnapshot::from_json(v.get("metrics").ok_or("manifest missing 'metrics'")?)?;
        Ok(out)
    }
}

/// The schema identifier of a `piton-serve` cache manifest.
pub const SERVE_MANIFEST_SCHEMA: &str = "piton-serve-manifest/v1";

/// One cached context in a [`ServeManifest`]: the context spec, the
/// journal file in the cache directory that holds its results, and
/// that journal's accounting at shutdown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeContextRecord {
    pub context: String,
    pub file: String,
    pub stats: JournalStats,
}

/// The `piton-serve-manifest/v1` document the daemon writes into its
/// cache directory on clean shutdown: the serving configuration, the
/// `serve.*` counters, and one record per cached context so the cache
/// contents are auditable without replaying the journals.
///
/// ```text
/// {
///   "schema": "piton-serve-manifest/v1",
///   "jobs": <usize>,
///   "shard_points": <usize>,
///   "counters": { "serve.cache_hits": n, ... },           // sorted by name
///   "contexts": [                                         // sorted by file
///     { "context": "...", "file": "ctx-<hash>.journal",
///       "journal": { "served": n, "appended": n, "recovered": n, "torn": n } }
///   ]
/// }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeManifest {
    pub jobs: usize,
    pub shard_points: usize,
    /// `serve.*` counter values, sorted by counter name.
    pub counters: Vec<(String, u64)>,
    /// One record per cached context, sorted by journal file name.
    pub contexts: Vec<ServeContextRecord>,
}

impl ServeManifest {
    /// Renders the manifest as a JSON document (with trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = ObjectBuilder::new();
        for (name, v) in &self.counters {
            counters = counters.field(name, Value::Int(i128::from(*v)));
        }
        let contexts = Value::Array(
            self.contexts
                .iter()
                .map(|c| {
                    ObjectBuilder::new()
                        .field("context", Value::Str(c.context.clone()))
                        .field("file", Value::Str(c.file.clone()))
                        .field(
                            "journal",
                            ObjectBuilder::new()
                                .field("served", Value::Int(i128::from(c.stats.served)))
                                .field("appended", Value::Int(i128::from(c.stats.appended)))
                                .field("recovered", Value::Int(i128::from(c.stats.recovered)))
                                .field("torn", Value::Int(i128::from(c.stats.torn)))
                                .build(),
                        )
                        .build()
                })
                .collect(),
        );
        let doc = ObjectBuilder::new()
            .field("schema", Value::Str(SERVE_MANIFEST_SCHEMA.to_owned()))
            .field("jobs", Value::Int(self.jobs as i128))
            .field("shard_points", Value::Int(self.shard_points as i128))
            .field("counters", counters.build())
            .field("contexts", contexts)
            .build();
        let mut out = doc.render();
        out.push('\n');
        out
    }

    /// Parses and validates a serve manifest document.
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] naming what failed: malformed JSON, a
    /// wrong/missing schema identifier, or ill-typed fields.
    pub fn from_json(doc: &str) -> Result<Self, PitonError> {
        Self::from_json_inner(doc).map_err(|e| PitonError::codec(format!("serve manifest: {e}")))
    }

    fn from_json_inner(doc: &str) -> Result<Self, String> {
        let v = json::parse(doc)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("serve manifest missing 'schema'")?;
        if schema != SERVE_MANIFEST_SCHEMA {
            return Err(format!(
                "schema mismatch: got '{schema}', expected '{SERVE_MANIFEST_SCHEMA}'"
            ));
        }
        let count = |val: &Value, key: &str| -> Result<u64, String> {
            val.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing count '{key}'"))
        };
        let mut out = ServeManifest {
            jobs: count(&v, "jobs")? as usize,
            shard_points: count(&v, "shard_points")? as usize,
            ..ServeManifest::default()
        };
        let Some(Value::Object(counters)) = v.get("counters") else {
            return Err("serve manifest missing 'counters' object".to_owned());
        };
        for (name, val) in counters {
            out.counters.push((
                name.clone(),
                val.as_u64()
                    .ok_or_else(|| format!("counter '{name}' is not a count"))?,
            ));
        }
        for c in v
            .get("contexts")
            .and_then(Value::as_array)
            .ok_or("serve manifest missing 'contexts'")?
        {
            let text = |key: &str| -> Result<String, String> {
                c.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("context record missing '{key}'"))
            };
            let j = c.get("journal").ok_or("context record missing 'journal'")?;
            out.contexts.push(ServeContextRecord {
                context: text("context")?,
                file: text("file")?,
                stats: JournalStats {
                    served: count(j, "served")?,
                    appended: count(j, "appended")?,
                    recovered: count(j, "recovered")?,
                    torn: count(j, "torn")?,
                },
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn sample() -> RunManifest {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("engine.steps".to_owned(), 12_345);
        metrics.gauges.insert("sweep.speedup".to_owned(), 3.75);
        let mut h = Histogram::default();
        h.observe(4);
        h.observe(900);
        metrics.histograms.insert("engine.duty".to_owned(), h);
        RunManifest {
            fidelity: "quick".to_owned(),
            jobs: 4,
            fault_plan: Some("seed=7,drop=0.25,kill=epi:3".to_owned()),
            fault_effects: Some("seed=7,drop=0.25,kill=epi:3".to_owned()),
            governor: None,
            backend: None,
            journal: None,
            calibration: None,
            total_wall_s: 12.25,
            sections: vec![SectionRecord {
                title: "Figure 11: EPI".to_owned(),
                wall_s: 1.5,
                busy_s: 5.25,
                sweeps: 2,
                points: 40,
            }],
            holes: vec![HoleRecord {
                section: "epi".to_owned(),
                index: 3,
                point: "Add/Random".to_owned(),
                attempts: 3,
                error: "monitor dropped sample".to_owned(),
            }],
            metrics,
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let doc = m.to_json();
        assert_eq!(RunManifest::from_json(&doc).unwrap(), m);
    }

    #[test]
    fn rejects_wrong_schema() {
        let doc = sample().to_json().replace("piton-run-manifest/v1", "v0");
        let err = RunManifest::from_json(&doc).unwrap_err();
        assert!(matches!(err, PitonError::Codec { .. }), "{err:?}");
        assert!(err.to_string().contains("schema mismatch"), "{err}");
    }

    #[test]
    fn journal_stats_round_trip_and_are_omitted_when_absent() {
        let off = sample();
        assert!(
            !off.to_json().contains("journal"),
            "journal-less manifests must not mention the journal"
        );
        let on = RunManifest {
            journal: Some(JournalStats {
                served: 12,
                appended: 30,
                recovered: 13,
                torn: 1,
            }),
            ..sample()
        };
        let doc = on.to_json();
        assert!(doc.contains("\"journal\":{\"served\":12"), "{doc}");
        assert_eq!(RunManifest::from_json(&doc).unwrap(), on);
    }

    #[test]
    fn deterministic_projection_ignores_timing_metrics_and_journal() {
        let a = sample();
        let mut b = sample();
        b.total_wall_s = 99.0;
        b.jobs = 16; // results are jobs-invariant
        b.sections[0].wall_s = 42.0;
        b.sections[0].busy_s = 17.0;
        b.journal = Some(JournalStats {
            served: 5,
            appended: 1,
            recovered: 5,
            torn: 1,
        });
        b.metrics.counters.insert("extra.counter".to_owned(), 9);
        // Same logical run → same projection, despite every volatile
        // field differing.
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert!(a.deterministic_json().contains(DETERMINISTIC_SCHEMA));
        // A result-affecting difference does show up.
        let mut c = sample();
        c.holes.clear();
        assert_ne!(a.deterministic_json(), c.deterministic_json());
    }

    #[test]
    fn governor_field_is_omitted_when_absent_and_kept_when_present() {
        let off = sample();
        assert!(
            !off.to_json().contains("governor"),
            "ungoverned manifests must not mention the governor"
        );
        let on = RunManifest {
            governor: Some("throttle-on-boot".to_owned()),
            ..sample()
        };
        let doc = on.to_json();
        assert!(doc.contains("\"governor\":\"throttle-on-boot\""), "{doc}");
        assert_eq!(RunManifest::from_json(&doc).unwrap(), on);
    }

    #[test]
    fn backend_field_is_omitted_when_absent_and_kept_when_present() {
        let off = sample();
        assert!(
            !off.to_json().contains("backend"),
            "cycle-only manifests must not mention the backend"
        );
        assert!(!off.deterministic_json().contains("backend"));
        let on = RunManifest {
            backend: Some("both".to_owned()),
            ..sample()
        };
        let doc = on.to_json();
        assert!(doc.contains("\"backend\":\"both\""), "{doc}");
        assert_eq!(RunManifest::from_json(&doc).unwrap(), on);
        // The backend changes what the run computes, so it belongs to
        // the deterministic projection too.
        assert!(on.deterministic_json().contains("\"backend\":\"both\""));
        assert_ne!(off.deterministic_json(), on.deterministic_json());
    }

    #[test]
    fn calibration_record_round_trips_and_is_omitted_when_absent() {
        let off = sample();
        assert!(
            !off.to_json().contains("calibration"),
            "cycle-only manifests must not mention calibration"
        );
        let on = RunManifest {
            calibration: Some(CalibrationRecord {
                probes: 111,
                residuals: vec![
                    ("VDD".to_owned(), 0.00137, 0.00021),
                    ("VCS".to_owned(), 0.01074, 0.00188),
                    ("VIO".to_owned(), 0.01667, 0.00354),
                ],
                worst: Some(("idle".to_owned(), "VIO".to_owned(), 0.01667)),
                coefficients: vec![
                    ("vdd.core_active".to_owned(), 112.5),
                    ("vcs.l2_read".to_owned(), 38.25),
                ],
            }),
            ..sample()
        };
        let doc = on.to_json();
        assert!(doc.contains("\"calibration\":{\"probes\":111"), "{doc}");
        assert_eq!(RunManifest::from_json(&doc).unwrap(), on);
        // Fit quality is diagnostic, not part of the logical result.
        assert_eq!(off.deterministic_json(), on.deterministic_json());
        // An absent worst probe is simply omitted.
        let mut no_worst = on.clone();
        no_worst.calibration.as_mut().unwrap().worst = None;
        let doc = no_worst.to_json();
        assert!(!doc.contains("worst"), "{doc}");
        assert_eq!(RunManifest::from_json(&doc).unwrap(), no_worst);
    }

    #[test]
    fn no_fault_plan_is_null() {
        let m = RunManifest {
            fault_plan: None,
            fidelity: "full".to_owned(),
            ..sample()
        };
        let doc = m.to_json();
        assert!(doc.contains("\"fault_plan\":null"), "{doc}");
        assert_eq!(RunManifest::from_json(&doc).unwrap().fault_plan, None);
    }

    #[test]
    fn serve_manifest_round_trips() {
        let m = ServeManifest {
            jobs: 4,
            shard_points: 512,
            counters: vec![
                ("serve.cache_hits".to_owned(), 36),
                ("serve.points_computed".to_owned(), 12),
                ("serve.requests".to_owned(), 3),
            ],
            contexts: vec![ServeContextRecord {
                context: "piton/0.1.0|fidelity=quick|effects=none|backend=cycle".to_owned(),
                file: "ctx-0123456789abcdef.journal".to_owned(),
                stats: JournalStats {
                    served: 36,
                    appended: 12,
                    recovered: 12,
                    torn: 0,
                },
            }],
        };
        let doc = m.to_json();
        assert!(doc.contains(SERVE_MANIFEST_SCHEMA), "{doc}");
        assert_eq!(ServeManifest::from_json(&doc).unwrap(), m);
        // Wrong schema and garbage are structured errors, not panics.
        assert!(ServeManifest::from_json("{\"schema\":\"nope\"}").is_err());
        assert!(ServeManifest::from_json("torn {").is_err());
    }
}
