//! Sense resistors and I²C voltage/current monitors.
//!
//! The Piton board dedicates three PCB layers to split power planes with
//! sense resistors bridging the planes that feed each chip rail; I²C
//! voltage monitors track the socket-pin voltage and the drop across
//! each sense resistor. The monitors poll at ≈ 17 Hz (a limitation of
//! the devices and host), and every reported measurement in the paper is
//! the mean of **128 samples (≈ 7.5 s)** at steady state with the sample
//! standard deviation as the error bar (§III-A). This module reproduces
//! that pipeline, including measurement noise and ADC quantization.
//!
//! # Examples
//!
//! ```
//! use piton_board::monitor::{MonitorChannel, MeasurementWindow};
//! use piton_arch::units::Watts;
//!
//! let mut chan = MonitorChannel::piton_board(42);
//! let window: MeasurementWindow =
//!     (0..128).map(|_| chan.sample(Watts(2.0153))).collect();
//! assert!((window.mean().unwrap().as_mw() - 2015.3).abs() < 3.0);
//! assert!(window.stddev().unwrap().as_mw() < 5.0);
//! ```

use crate::fault::{FaultPlan, FaultState, SampleFault, MAX_SAMPLE_RETRIES};
use piton_arch::error::PitonError;
use piton_arch::units::{Ohms, Seconds, Watts};
use piton_obs::metrics;
use piton_obs::trace::{self, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Monitor poll rate in hertz (§III-A: "approximately 17Hz").
pub const POLL_HZ: f64 = 17.0;

/// Default samples per reported measurement (§III-A: 128 samples,
/// "about a 7.5 second time window").
pub const DEFAULT_SAMPLES: usize = 128;

/// Wall time spanned by one default measurement window.
#[must_use]
pub fn window_duration(samples: usize) -> Seconds {
    Seconds(samples as f64 / POLL_HZ)
}

/// One I²C-monitored rail channel: a sense resistor plus the monitor's
/// noise and quantization.
#[derive(Debug, Clone)]
pub struct MonitorChannel {
    sense: Ohms,
    /// Additive Gaussian noise floor in watts.
    noise_floor_w: f64,
    /// Proportional noise (fraction of reading).
    noise_fraction: f64,
    /// ADC least-significant-bit size in watts.
    lsb_w: f64,
    rng: StdRng,
    /// The channel's own seed; identifies its fault stream under a plan.
    seed: u64,
    /// Injected-fault stream, when a plan is attached.
    fault: Option<FaultState>,
    /// Previous conversion — what a stuck ADC re-reports.
    last: Option<Watts>,
    /// Conversions taken so far — the sample index stamped on ADC
    /// trace events.
    samples: u64,
}

impl MonitorChannel {
    /// The Piton board channel: 2 mΩ sense resistor, ±1.5 mW noise floor
    /// (the Table V error), 0.05% proportional noise, 0.5 mW LSB.
    #[must_use]
    pub fn piton_board(seed: u64) -> Self {
        Self {
            sense: Ohms(0.002),
            noise_floor_w: 1.5e-3,
            noise_fraction: 5.0e-4,
            lsb_w: 0.5e-3,
            rng: StdRng::seed_from_u64(seed),
            seed,
            fault: None,
            last: None,
            samples: 0,
        }
    }

    /// The sense resistor value.
    #[must_use]
    pub fn sense_resistance(&self) -> Ohms {
        self.sense
    }

    /// Attaches a fault plan: subsequent [`Self::sample_with_retry`]
    /// calls draw injected faults from a stream seeded by the plan and
    /// this channel's own seed. Plans with no monitor-fault rates leave
    /// the channel fault-free (and its noise stream untouched).
    pub fn attach_faults(&mut self, plan: &FaultPlan) {
        self.fault = if plan.has_monitor_faults() {
            Some(FaultState::for_channel(plan, self.seed))
        } else {
            None
        };
    }

    /// Takes one monitor sample of a true rail power.
    pub fn sample(&mut self, true_power: Watts) -> Watts {
        let sigma = self.noise_floor_w + self.noise_fraction * true_power.0.abs();
        // Box-Muller from two uniforms keeps the dependency surface tiny.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let noisy = true_power.0 + sigma * gauss;
        // ADC quantization.
        let w = Watts((noisy / self.lsb_w).round() * self.lsb_w);
        self.last = Some(w);
        if trace::active() {
            self.trace_conversion(w);
        }
        self.samples += 1;
        w
    }

    /// Outlined ADC trace emission; power is stamped in integer
    /// microwatts so the event round-trips exactly through JSONL.
    #[cold]
    fn trace_conversion(&self, w: Watts) {
        trace::emit(TraceEvent::Adc {
            channel: self.seed,
            sample: self.samples,
            microwatts: (w.0 * 1e6).round() as i64,
        });
    }

    /// Takes one sample under the attached fault plan, retrying dropped
    /// reads up to [`MAX_SAMPLE_RETRIES`] times with deterministic
    /// backoff (each retry burns one poll slot, tallied in `quality`).
    /// Returns `None` when every attempt dropped — the sample is lost
    /// and the window simply gets one fewer entry, exactly like the real
    /// bench script skipping a failed I²C transaction.
    ///
    /// Without an attached plan this is byte-identical to [`Self::sample`].
    pub fn sample_with_retry(&mut self, true_power: Watts, quality: &mut Quality) -> Option<Watts> {
        let before = *quality;
        let out = self.sample_with_retry_inner(true_power, quality);
        if metrics::enabled() {
            publish_quality_delta(&before, quality);
        }
        out
    }

    fn sample_with_retry_inner(
        &mut self,
        true_power: Watts,
        quality: &mut Quality,
    ) -> Option<Watts> {
        let Some(mut fault) = self.fault.take() else {
            quality.kept += 1;
            return Some(self.sample(true_power));
        };
        let mut outcome = None;
        for attempt in 0..=MAX_SAMPLE_RETRIES {
            match fault.roll() {
                Some(SampleFault::Dropped) => {
                    // Failed transaction: no conversion happened. Back
                    // off one poll slot and retry, deterministically.
                    if attempt < MAX_SAMPLE_RETRIES {
                        quality.retried += 1;
                    }
                }
                Some(SampleFault::Stuck) => {
                    // The ADC re-reports its previous conversion.
                    quality.stuck += 1;
                    quality.kept += 1;
                    let w = self
                        .last
                        .unwrap_or_else(|| Watts((true_power.0 / self.lsb_w).round() * self.lsb_w));
                    outcome = Some(w);
                    break;
                }
                Some(SampleFault::Glitch) => {
                    quality.glitched += 1;
                    quality.kept += 1;
                    let w = fault.glitch_value(true_power);
                    self.last = Some(w);
                    outcome = Some(w);
                    break;
                }
                None => {
                    quality.kept += 1;
                    outcome = Some(self.sample(true_power));
                    break;
                }
            }
        }
        if outcome.is_none() {
            quality.dropped += 1;
        }
        self.fault = Some(fault);
        outcome
    }
}

/// Outlined metrics publication of one retry-loop outcome — the delta
/// between the caller's [`Quality`] before and after a sample. Callers
/// gate on [`metrics::enabled`].
#[cold]
fn publish_quality_delta(before: &Quality, after: &Quality) {
    let d = |name: &str, b: u32, a: u32| {
        if a > b {
            metrics::counter_add(name, u64::from(a - b));
        }
    };
    d("monitor.kept", before.kept, after.kept);
    d("monitor.dropped", before.dropped, after.dropped);
    d("monitor.retried", before.retried, after.retried);
    d("monitor.stuck", before.stuck, after.stuck);
    d("monitor.glitched", before.glitched, after.glitched);
}

/// Bench-side health report of one measurement window: how many samples
/// survived, and what the fault-handling machinery had to do to get
/// them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quality {
    /// Samples that made it into the window (including stuck/glitched
    /// ones later subject to outlier rejection).
    pub kept: u32,
    /// Samples lost outright after exhausting retries.
    pub dropped: u32,
    /// Extra poll slots burned retrying dropped reads.
    pub retried: u32,
    /// Stuck-ADC repeats of a previous conversion.
    pub stuck: u32,
    /// Out-of-range glitch reads injected into the window.
    pub glitched: u32,
    /// Samples discarded by window outlier rejection.
    pub rejected: u32,
}

impl Quality {
    /// Merges another report into this one (e.g. across rails).
    pub fn absorb(&mut self, other: &Quality) {
        self.kept += other.kept;
        self.dropped += other.dropped;
        self.retried += other.retried;
        self.stuck += other.stuck;
        self.glitched += other.glitched;
        self.rejected += other.rejected;
    }

    /// Whether any fault handling fired at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.dropped == 0
            && self.retried == 0
            && self.stuck == 0
            && self.glitched == 0
            && self.rejected == 0
    }
}

impl std::fmt::Display for Quality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} kept, {} dropped, {} retried, {} stuck, {} glitched, {} rejected",
            self.kept, self.dropped, self.retried, self.stuck, self.glitched, self.rejected
        )
    }
}

/// A collected window of power samples with the paper's statistics.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementWindow {
    samples: Vec<Watts>,
}

impl MeasurementWindow {
    /// An empty window.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, w: Watts) {
        self.samples.push(w);
    }

    /// The raw samples.
    #[must_use]
    pub fn samples(&self) -> &[Watts] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean power over the window (what the paper reports).
    ///
    /// # Errors
    ///
    /// [`PitonError::EmptyWindow`] if every sample was dropped or the
    /// window was never filled.
    pub fn mean(&self) -> Result<Watts, PitonError> {
        if self.is_empty() {
            return Err(PitonError::EmptyWindow {
                context: "window mean",
            });
        }
        Ok(Watts(
            self.samples.iter().map(|w| w.0).sum::<f64>() / self.samples.len() as f64,
        ))
    }

    /// Sample standard deviation — the paper's error bars.
    ///
    /// # Errors
    ///
    /// [`PitonError::EmptyWindow`] if every sample was dropped or the
    /// window was never filled.
    pub fn stddev(&self) -> Result<Watts, PitonError> {
        if self.is_empty() {
            return Err(PitonError::EmptyWindow {
                context: "window stddev",
            });
        }
        let n = self.samples.len() as f64;
        if n < 2.0 {
            return Ok(Watts(0.0));
        }
        let mean = self.mean()?.0;
        let var = self
            .samples
            .iter()
            .map(|w| (w.0 - mean) * (w.0 - mean))
            .sum::<f64>()
            / (n - 1.0);
        Ok(Watts(var.sqrt()))
    }

    /// Median of the window — the robust centre outlier rejection pivots
    /// on.
    ///
    /// # Errors
    ///
    /// [`PitonError::EmptyWindow`] on an empty window.
    pub fn median(&self) -> Result<Watts, PitonError> {
        if self.is_empty() {
            return Err(PitonError::EmptyWindow {
                context: "window median",
            });
        }
        let mut v: Vec<f64> = self.samples.iter().map(|w| w.0).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite power samples"));
        let n = v.len();
        Ok(Watts(if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        }))
    }

    /// Statistics after rejecting glitch outliers: samples further from
    /// the window median than max(5 % of the median, 20 mW) — far
    /// outside the board's ±1.5 mW noise band but tight enough to catch
    /// every injected glitch — are discarded; the paper's mean ± stddev
    /// is computed over the survivors and the rejection count recorded
    /// in `quality`.
    ///
    /// # Errors
    ///
    /// [`PitonError::EmptyWindow`] on an empty window (the median
    /// itself always survives, so a non-empty window never rejects to
    /// empty).
    pub fn robust_stats(&self, quality: &mut Quality) -> Result<Measured, PitonError> {
        let median = self.median()?.0;
        let tolerance = (0.05 * median.abs()).max(0.02);
        let survivors: MeasurementWindow = self
            .samples
            .iter()
            .copied()
            .filter(|w| (w.0 - median).abs() <= tolerance)
            .collect();
        let rejected = self.len() - survivors.len();
        let rejected = u32::try_from(rejected).expect("window fits in u32");
        quality.rejected += rejected;
        quality.kept = quality.kept.saturating_sub(rejected);
        Measured::from_window(&survivors)
    }
}

impl FromIterator<Watts> for MeasurementWindow {
    fn from_iter<T: IntoIterator<Item = Watts>>(iter: T) -> Self {
        Self {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Watts> for MeasurementWindow {
    fn extend<T: IntoIterator<Item = Watts>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

/// A mean ± standard-deviation result, the unit every experiment
/// reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measured {
    /// Mean over the window.
    pub mean: Watts,
    /// Sample standard deviation.
    pub stddev: Watts,
}

impl Measured {
    /// Collapses a window into its statistics.
    ///
    /// # Errors
    ///
    /// [`PitonError::EmptyWindow`] on an empty window.
    pub fn from_window(w: &MeasurementWindow) -> Result<Self, PitonError> {
        Ok(Self {
            mean: w.mean()?,
            stddev: w.stddev()?,
        })
    }
}

impl std::fmt::Display for Measured {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}±{:.1} mW", self.mean.as_mw(), self.stddev.as_mw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_duration_matches_paper() {
        // 128 samples at ~17 Hz ≈ 7.5 s.
        let d = window_duration(DEFAULT_SAMPLES);
        assert!((d.0 - 7.5).abs() < 0.05, "{d}");
    }

    #[test]
    fn sampling_is_unbiased_and_tight() {
        let mut chan = MonitorChannel::piton_board(7);
        let truth = Watts(2.0153);
        let window: MeasurementWindow = (0..2_000).map(|_| chan.sample(truth)).collect();
        assert!((window.mean().unwrap().0 - truth.0).abs() < 0.001);
        // Noise floor ~1.5 mW + 1 mW proportional: stddev in range.
        let s = window.stddev().unwrap().as_mw();
        assert!((0.5..6.0).contains(&s), "stddev {s}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = MonitorChannel::piton_board(1);
        let mut b = MonitorChannel::piton_board(1);
        for _ in 0..10 {
            assert_eq!(a.sample(Watts(1.0)), b.sample(Watts(1.0)));
        }
        let mut c = MonitorChannel::piton_board(2);
        let same: Vec<_> = (0..10).map(|_| c.sample(Watts(1.0))).collect();
        let mut d = MonitorChannel::piton_board(1);
        let other: Vec<_> = (0..10).map(|_| d.sample(Watts(1.0))).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn quantization_snaps_to_lsb() {
        let mut chan = MonitorChannel::piton_board(3);
        let s = chan.sample(Watts(1.0));
        let lsbs = s.0 / 0.5e-3;
        assert!((lsbs - lsbs.round()).abs() < 1e-9);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let w: MeasurementWindow = (0..16).map(|_| Watts(1.0)).collect();
        assert_eq!(w.stddev().unwrap(), Watts(0.0));
        assert_eq!(w.mean().unwrap(), Watts(1.0));
    }

    #[test]
    fn empty_window_reports_an_error_not_a_panic() {
        let w = MeasurementWindow::new();
        assert_eq!(
            w.mean().unwrap_err(),
            PitonError::EmptyWindow {
                context: "window mean"
            }
        );
        assert_eq!(
            w.stddev().unwrap_err(),
            PitonError::EmptyWindow {
                context: "window stddev"
            }
        );
        assert!(Measured::from_window(&w).is_err());
        assert!(w.median().is_err());
        assert!(w.robust_stats(&mut Quality::default()).is_err());
    }

    #[test]
    fn fault_free_retry_path_matches_plain_sampling() {
        let mut plain = MonitorChannel::piton_board(11);
        let mut retried = MonitorChannel::piton_board(11);
        let mut q = Quality::default();
        for i in 0..64 {
            let truth = Watts(1.0 + 0.01 * f64::from(i));
            let a = plain.sample(truth);
            let b = retried.sample_with_retry(truth, &mut q).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(q.kept, 64);
        assert!(q.is_clean());
    }

    #[test]
    fn faulty_sampling_is_deterministic_and_tallied() {
        let plan = FaultPlan {
            drop_rate: 0.2,
            stuck_rate: 0.1,
            glitch_rate: 0.1,
            ..FaultPlan::with_seed(5)
        };
        let run = |()| {
            let mut chan = MonitorChannel::piton_board(11);
            chan.attach_faults(&plan);
            let mut q = Quality::default();
            let samples: Vec<_> = (0..256)
                .filter_map(|_| chan.sample_with_retry(Watts(2.0), &mut q))
                .collect();
            (samples, q)
        };
        let (sa, qa) = run(());
        let (sb, qb) = run(());
        assert_eq!(sa, sb, "fault-injected stream must be reproducible");
        assert_eq!(qa, qb);
        assert!(!qa.is_clean(), "rates this high must fire: {qa}");
        assert!(qa.stuck > 0 && qa.glitched > 0 && qa.retried > 0, "{qa}");
        assert_eq!(qa.kept as usize, sa.len());
    }

    #[test]
    fn robust_stats_reject_injected_glitches() {
        let plan = FaultPlan {
            glitch_rate: 0.08,
            ..FaultPlan::with_seed(9)
        };
        let mut chan = MonitorChannel::piton_board(21);
        chan.attach_faults(&plan);
        let mut q = Quality::default();
        let truth = Watts(2.0153);
        let window: MeasurementWindow = (0..128)
            .filter_map(|_| chan.sample_with_retry(truth, &mut q))
            .collect();
        // Raw mean is polluted by multi-watt glitches…
        let raw = window.mean().unwrap();
        assert!((raw.0 - truth.0).abs() > 0.05, "raw mean {raw} too clean");
        // …robust stats land back in the paper's noise band.
        let m = window.robust_stats(&mut q).unwrap();
        assert!((m.mean.0 - truth.0).abs() < 0.003, "robust mean {}", m.mean);
        assert!(m.stddev.as_mw() < 5.0);
        assert_eq!(q.rejected, q.glitched, "every glitch rejected, no more");
    }

    #[test]
    fn measured_formats_like_the_paper() {
        let m = Measured {
            mean: Watts::from_mw(389.3),
            stddev: Watts::from_mw(1.5),
        };
        assert_eq!(m.to_string(), "389.3±1.5 mW");
    }
}
