//! Sense resistors and I²C voltage/current monitors.
//!
//! The Piton board dedicates three PCB layers to split power planes with
//! sense resistors bridging the planes that feed each chip rail; I²C
//! voltage monitors track the socket-pin voltage and the drop across
//! each sense resistor. The monitors poll at ≈ 17 Hz (a limitation of
//! the devices and host), and every reported measurement in the paper is
//! the mean of **128 samples (≈ 7.5 s)** at steady state with the sample
//! standard deviation as the error bar (§III-A). This module reproduces
//! that pipeline, including measurement noise and ADC quantization.
//!
//! # Examples
//!
//! ```
//! use piton_board::monitor::{MonitorChannel, MeasurementWindow};
//! use piton_arch::units::Watts;
//!
//! let mut chan = MonitorChannel::piton_board(42);
//! let window: MeasurementWindow =
//!     (0..128).map(|_| chan.sample(Watts(2.0153))).collect();
//! assert!((window.mean().as_mw() - 2015.3).abs() < 3.0);
//! assert!(window.stddev().as_mw() < 5.0);
//! ```

use piton_arch::units::{Ohms, Seconds, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Monitor poll rate in hertz (§III-A: "approximately 17Hz").
pub const POLL_HZ: f64 = 17.0;

/// Default samples per reported measurement (§III-A: 128 samples,
/// "about a 7.5 second time window").
pub const DEFAULT_SAMPLES: usize = 128;

/// Wall time spanned by one default measurement window.
#[must_use]
pub fn window_duration(samples: usize) -> Seconds {
    Seconds(samples as f64 / POLL_HZ)
}

/// One I²C-monitored rail channel: a sense resistor plus the monitor's
/// noise and quantization.
#[derive(Debug, Clone)]
pub struct MonitorChannel {
    sense: Ohms,
    /// Additive Gaussian noise floor in watts.
    noise_floor_w: f64,
    /// Proportional noise (fraction of reading).
    noise_fraction: f64,
    /// ADC least-significant-bit size in watts.
    lsb_w: f64,
    rng: StdRng,
}

impl MonitorChannel {
    /// The Piton board channel: 2 mΩ sense resistor, ±1.5 mW noise floor
    /// (the Table V error), 0.05% proportional noise, 0.5 mW LSB.
    #[must_use]
    pub fn piton_board(seed: u64) -> Self {
        Self {
            sense: Ohms(0.002),
            noise_floor_w: 1.5e-3,
            noise_fraction: 5.0e-4,
            lsb_w: 0.5e-3,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The sense resistor value.
    #[must_use]
    pub fn sense_resistance(&self) -> Ohms {
        self.sense
    }

    /// Takes one monitor sample of a true rail power.
    pub fn sample(&mut self, true_power: Watts) -> Watts {
        let sigma = self.noise_floor_w + self.noise_fraction * true_power.0.abs();
        // Box-Muller from two uniforms keeps the dependency surface tiny.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let noisy = true_power.0 + sigma * gauss;
        // ADC quantization.
        Watts((noisy / self.lsb_w).round() * self.lsb_w)
    }
}

/// A collected window of power samples with the paper's statistics.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementWindow {
    samples: Vec<Watts>,
}

impl MeasurementWindow {
    /// An empty window.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, w: Watts) {
        self.samples.push(w);
    }

    /// The raw samples.
    #[must_use]
    pub fn samples(&self) -> &[Watts] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean power over the window (what the paper reports).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    #[must_use]
    pub fn mean(&self) -> Watts {
        assert!(!self.is_empty(), "empty measurement window");
        Watts(self.samples.iter().map(|w| w.0).sum::<f64>() / self.samples.len() as f64)
    }

    /// Sample standard deviation — the paper's error bars.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    #[must_use]
    pub fn stddev(&self) -> Watts {
        assert!(!self.is_empty(), "empty measurement window");
        let n = self.samples.len() as f64;
        if n < 2.0 {
            return Watts(0.0);
        }
        let mean = self.mean().0;
        let var = self
            .samples
            .iter()
            .map(|w| (w.0 - mean) * (w.0 - mean))
            .sum::<f64>()
            / (n - 1.0);
        Watts(var.sqrt())
    }
}

impl FromIterator<Watts> for MeasurementWindow {
    fn from_iter<T: IntoIterator<Item = Watts>>(iter: T) -> Self {
        Self {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Watts> for MeasurementWindow {
    fn extend<T: IntoIterator<Item = Watts>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

/// A mean ± standard-deviation result, the unit every experiment
/// reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measured {
    /// Mean over the window.
    pub mean: Watts,
    /// Sample standard deviation.
    pub stddev: Watts,
}

impl Measured {
    /// Collapses a window into its statistics.
    #[must_use]
    pub fn from_window(w: &MeasurementWindow) -> Self {
        Self {
            mean: w.mean(),
            stddev: w.stddev(),
        }
    }
}

impl std::fmt::Display for Measured {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}±{:.1} mW", self.mean.as_mw(), self.stddev.as_mw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_duration_matches_paper() {
        // 128 samples at ~17 Hz ≈ 7.5 s.
        let d = window_duration(DEFAULT_SAMPLES);
        assert!((d.0 - 7.5).abs() < 0.05, "{d}");
    }

    #[test]
    fn sampling_is_unbiased_and_tight() {
        let mut chan = MonitorChannel::piton_board(7);
        let truth = Watts(2.0153);
        let window: MeasurementWindow = (0..2_000).map(|_| chan.sample(truth)).collect();
        assert!((window.mean().0 - truth.0).abs() < 0.001);
        // Noise floor ~1.5 mW + 1 mW proportional: stddev in range.
        let s = window.stddev().as_mw();
        assert!((0.5..6.0).contains(&s), "stddev {s}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = MonitorChannel::piton_board(1);
        let mut b = MonitorChannel::piton_board(1);
        for _ in 0..10 {
            assert_eq!(a.sample(Watts(1.0)), b.sample(Watts(1.0)));
        }
        let mut c = MonitorChannel::piton_board(2);
        let same: Vec<_> = (0..10).map(|_| c.sample(Watts(1.0))).collect();
        let mut d = MonitorChannel::piton_board(1);
        let other: Vec<_> = (0..10).map(|_| d.sample(Watts(1.0))).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn quantization_snaps_to_lsb() {
        let mut chan = MonitorChannel::piton_board(3);
        let s = chan.sample(Watts(1.0));
        let lsbs = s.0 / 0.5e-3;
        assert!((lsbs - lsbs.round()).abs() < 1e-9);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let w: MeasurementWindow = (0..16).map(|_| Watts(1.0)).collect();
        assert_eq!(w.stddev(), Watts(0.0));
        assert_eq!(w.mean(), Watts(1.0));
    }

    #[test]
    #[should_panic(expected = "empty measurement window")]
    fn empty_window_mean_panics() {
        let _ = MeasurementWindow::new().mean();
    }

    #[test]
    fn measured_formats_like_the_paper() {
        let m = Measured {
            mean: Watts::from_mw(389.3),
            stddev: Watts::from_mw(1.5),
        };
        assert_eq!(m.to_string(), "389.3±1.5 mW");
    }
}
