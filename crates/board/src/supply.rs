//! Bench power supplies and the board's power-delivery network.
//!
//! The Piton test board can power each of the three rails (VDD, VCS,
//! VIO) from on-board regulators or bench supplies; the paper uses bench
//! supplies everywhere because they offer fine-grained voltage control
//! and **remote voltage sense**, which compensates the drop across
//! cables and board planes so the programmed voltage actually appears at
//! the socket pins (§III-A).
//!
//! # Examples
//!
//! ```
//! use piton_board::supply::BenchSupply;
//! use piton_arch::units::{Amps, Volts};
//!
//! let psu = BenchSupply::with_remote_sense(Volts(1.0));
//! // Remote sense holds the socket at the setpoint regardless of load.
//! assert_eq!(psu.pin_voltage(Amps(2.0)), Volts(1.0));
//! ```

use piton_arch::units::{Amps, Ohms, Volts};
use serde::{Deserialize, Serialize};

/// One bench power supply channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchSupply {
    setpoint: Volts,
    remote_sense: bool,
    /// Cable + board plane resistance between supply and socket.
    cable_resistance: Ohms,
}

impl BenchSupply {
    /// A supply with remote sense (the measurement configuration).
    #[must_use]
    pub fn with_remote_sense(setpoint: Volts) -> Self {
        Self {
            setpoint,
            remote_sense: true,
            cable_resistance: Ohms(0.015),
        }
    }

    /// A supply without remote sense (the on-board-regulator fallback).
    #[must_use]
    pub fn without_remote_sense(setpoint: Volts, cable_resistance: Ohms) -> Self {
        Self {
            setpoint,
            remote_sense: false,
            cable_resistance,
        }
    }

    /// The programmed voltage.
    #[must_use]
    pub fn setpoint(&self) -> Volts {
        self.setpoint
    }

    /// Reprograms the output voltage.
    pub fn set_voltage(&mut self, v: Volts) {
        self.setpoint = v;
    }

    /// Whether remote sense is wired.
    #[must_use]
    pub fn has_remote_sense(&self) -> bool {
        self.remote_sense
    }

    /// Voltage at the socket pins while drawing `current`.
    ///
    /// With remote sense the supply regulates the *sense point* to the
    /// setpoint; without it, cable IR drop subtracts from the pins.
    #[must_use]
    pub fn pin_voltage(&self, current: Amps) -> Volts {
        if self.remote_sense {
            self.setpoint
        } else {
            self.setpoint - current * self.cable_resistance
        }
    }
}

/// The three supply channels of the test board.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerRails {
    /// Core rail.
    pub vdd: BenchSupply,
    /// SRAM rail.
    pub vcs: BenchSupply,
    /// I/O rail.
    pub vio: BenchSupply,
}

impl PowerRails {
    /// The Table III default rails, bench-supplied with remote sense.
    #[must_use]
    pub fn table_iii() -> Self {
        Self {
            vdd: BenchSupply::with_remote_sense(Volts(1.00)),
            vcs: BenchSupply::with_remote_sense(Volts(1.05)),
            vio: BenchSupply::with_remote_sense(Volts(1.80)),
        }
    }

    /// Programs VDD and tracks `VCS = VDD + 0.05 V` (the paper's sweep
    /// convention).
    pub fn set_vdd_tracked(&mut self, vdd: Volts) {
        self.vdd.set_voltage(vdd);
        self.vcs.set_voltage(Volts(vdd.0 + 0.05));
    }
}

impl Default for PowerRails {
    fn default() -> Self {
        Self::table_iii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_sense_cancels_cable_drop() {
        let psu = BenchSupply::with_remote_sense(Volts(0.9));
        assert_eq!(psu.pin_voltage(Amps(0.0)), Volts(0.9));
        assert_eq!(psu.pin_voltage(Amps(3.0)), Volts(0.9));
        assert!(psu.has_remote_sense());
    }

    #[test]
    fn without_remote_sense_pins_sag_under_load() {
        let psu = BenchSupply::without_remote_sense(Volts(1.0), Ohms(0.02));
        let loaded = psu.pin_voltage(Amps(2.0));
        assert!((loaded.0 - 0.96).abs() < 1e-12);
    }

    #[test]
    fn tracked_vcs_follows_vdd() {
        let mut rails = PowerRails::table_iii();
        rails.set_vdd_tracked(Volts(0.8));
        assert_eq!(rails.vdd.setpoint(), Volts(0.8));
        assert!((rails.vcs.setpoint().0 - 0.85).abs() < 1e-12);
        // VIO untouched.
        assert_eq!(rails.vio.setpoint(), Volts(1.8));
    }
}
