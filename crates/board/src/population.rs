//! The chip population: process variation, defects, and yield.
//!
//! The paper received 118 Piton die from a two-wafer multi-project run,
//! packaged 45, and tested a random selection of 32, classifying them as
//! (Table IV): 19 good, 7 deterministically unstable (bad SRAM cells,
//! possibly repairable by row/column remap), 4 bad with high VCS current
//! (short), 1 bad with high VDD current (short), and 1
//! nondeterministically unstable (marginal SRAM cells).
//!
//! This module generates a seeded synthetic population with per-die
//! process corners (speed/leakage/dynamic multipliers, correlated the
//! way real silicon is: fast dies leak more) and defect classes drawn at
//! the empirical Table IV rates. The three *named* chips of the paper
//! are fixed corners: Chip #1 fast-but-leaky (thermally limited at high
//! voltage in Figure 9), Chip #2 typical (used for most studies), and
//! Chip #3 slightly slow and cool (used for the microbenchmarks, with
//! its own Table V row: 364.8 mW static, 1906.2 mW idle).

use piton_arch::error::PitonError;
use piton_power::model::ChipCorner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Health classification of one tested die (Table IV rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipStatus {
    /// Stable operation.
    Good,
    /// Consistently fails deterministically — bad SRAM cells, possibly
    /// fixable with SRAM row/column repair.
    UnstableDeterministic,
    /// High VCS current draw — likely short.
    BadVcsShort,
    /// High VDD current draw — likely short.
    BadVddShort,
    /// Consistently fails nondeterministically — unstable SRAM cells.
    UnstableNondeterministic,
}

impl ChipStatus {
    /// All classes in Table IV row order.
    pub const ALL: [ChipStatus; 5] = [
        ChipStatus::Good,
        ChipStatus::UnstableDeterministic,
        ChipStatus::BadVcsShort,
        ChipStatus::BadVddShort,
        ChipStatus::UnstableNondeterministic,
    ];

    /// The symptom column of Table IV.
    #[must_use]
    pub fn symptom(self) -> &'static str {
        match self {
            ChipStatus::Good => "Stable operation",
            ChipStatus::UnstableDeterministic => "Consistently fails deterministically",
            ChipStatus::BadVcsShort => "High VCS current draw",
            ChipStatus::BadVddShort => "High VDD current draw",
            ChipStatus::UnstableNondeterministic => "Consistently fails nondeterministically",
        }
    }

    /// The possible-cause column of Table IV.
    #[must_use]
    pub fn possible_cause(self) -> &'static str {
        match self {
            ChipStatus::Good => "N/A",
            ChipStatus::UnstableDeterministic => "Bad SRAM cells",
            ChipStatus::BadVcsShort | ChipStatus::BadVddShort => "Short",
            ChipStatus::UnstableNondeterministic => "Unstable SRAM cells",
        }
    }

    /// Whether the die is usable for characterization (only stable,
    /// fully-functional chips are, §IV-A).
    #[must_use]
    pub fn is_usable(self) -> bool {
        self == ChipStatus::Good
    }
}

/// One physical die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Die {
    /// Die serial (position in the population).
    pub serial: u32,
    /// Process corner.
    pub corner: ChipCorner,
    /// Health classification, determined at test time.
    pub status: ChipStatus,
    /// Whether this die was packaged (45 of 118 were).
    pub packaged: bool,
}

impl Die {
    /// Which cores this die's defects fuse off (bit *i* = tile *i*),
    /// mapping the Table IV classes onto degraded-but-runnable machines
    /// the way the paper ran chips with faulty cores as 24-core parts
    /// (the core is disabled, its router still forwards):
    ///
    /// * `Good` — nothing fused off;
    /// * `UnstableDeterministic` — one or two cores with bad SRAM
    ///   cells, chosen deterministically from the serial;
    /// * `UnstableNondeterministic` — one marginal core;
    /// * rail shorts — the whole array is unusable.
    #[must_use]
    pub fn faulty_core_mask(&self) -> u32 {
        const ALL_25: u32 = (1 << 25) - 1;
        // SplitMix64 finalizer on the serial: deterministic per die,
        // decorrelated across serials.
        let mut z = u64::from(self.serial).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let first = 1u32 << (z % 25);
        let second = 1u32 << ((z >> 32) % 25);
        match self.status {
            ChipStatus::Good => 0,
            ChipStatus::UnstableNondeterministic => first,
            // One bad SRAM macro usually takes out one core; sometimes
            // the defect spans two.
            ChipStatus::UnstableDeterministic => first | second,
            ChipStatus::BadVcsShort | ChipStatus::BadVddShort => ALL_25,
        }
    }
}

/// The named reference chips of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NamedChip {
    /// Fast but leaky; thermally limited at high VDD (Figure 9).
    Chip1,
    /// Typical; used for all default-parameter studies (Table V).
    Chip2,
    /// Slightly slow and cool; used for the microbenchmark studies.
    Chip3,
}

impl NamedChip {
    /// The fitted process corner of the named die.
    #[must_use]
    pub fn corner(self) -> ChipCorner {
        match self {
            NamedChip::Chip1 => ChipCorner {
                speed: 1.06,
                leakage: 1.45,
                dynamic: 1.12,
            },
            NamedChip::Chip2 => ChipCorner {
                speed: 1.0,
                leakage: 1.0,
                dynamic: 1.0,
            },
            // Chip #3: static 364.8/389.3 ≈ 0.937, idle dynamic
            // (1906.2-364.8)/(2015.3-389.3) ≈ 0.948.
            NamedChip::Chip3 => ChipCorner {
                speed: 0.99,
                leakage: 0.937,
                dynamic: 0.948,
            },
        }
    }
}

/// Empirical defect rates of the Table IV test campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefectRates {
    /// P(deterministically bad SRAM cells).
    pub sram_bad: f64,
    /// P(VCS short).
    pub vcs_short: f64,
    /// P(VDD short).
    pub vdd_short: f64,
    /// P(marginal SRAM cells).
    pub sram_marginal: f64,
}

impl DefectRates {
    /// The rates observed in Table IV (7, 4, 1, 1 of 32).
    #[must_use]
    pub fn table_iv() -> Self {
        Self {
            sram_bad: 7.0 / 32.0,
            vcs_short: 4.0 / 32.0,
            vdd_short: 1.0 / 32.0,
            sram_marginal: 1.0 / 32.0,
        }
    }
}

/// A seeded synthetic wafer population.
#[derive(Debug, Clone)]
pub struct ChipPopulation {
    dies: Vec<Die>,
}

impl ChipPopulation {
    /// Generates the paper's population: `total` dies, the first
    /// `packaged` of them packaged, with Table IV defect rates.
    #[must_use]
    pub fn generate(total: u32, packaged: u32, rates: DefectRates, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dies = (0..total)
            .map(|serial| {
                // Correlated process variation: one "global speed" draw;
                // leakage rises superlinearly with speed, dynamic mildly.
                let z: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                let speed = 1.0 + 0.04 * z;
                let leakage = (1.0 + 0.25 * z + 0.05 * rng.gen_range(-1.0..1.0)).max(0.5);
                let dynamic = 1.0 + 0.06 * z + 0.02 * rng.gen_range(-1.0..1.0);

                let roll: f64 = rng.gen_range(0.0..1.0);
                let status = if roll < rates.vdd_short {
                    ChipStatus::BadVddShort
                } else if roll < rates.vdd_short + rates.vcs_short {
                    ChipStatus::BadVcsShort
                } else if roll < rates.vdd_short + rates.vcs_short + rates.sram_bad {
                    ChipStatus::UnstableDeterministic
                } else if roll
                    < rates.vdd_short + rates.vcs_short + rates.sram_bad + rates.sram_marginal
                {
                    ChipStatus::UnstableNondeterministic
                } else {
                    ChipStatus::Good
                };
                Die {
                    serial,
                    corner: ChipCorner {
                        speed,
                        leakage,
                        dynamic,
                    },
                    status,
                    packaged: serial < packaged,
                }
            })
            .collect();
        Self { dies }
    }

    /// The paper's wafer run: 118 dies, 45 packaged, Table IV rates.
    ///
    /// The seed is chosen so that testing the default 32-chip selection
    /// reproduces the exact Table IV counts (19/7/4/1/1).
    #[must_use]
    pub fn piton_run() -> Self {
        Self::generate(118, 45, DefectRates::table_iv(), PITON_RUN_SEED)
    }

    /// All dies.
    #[must_use]
    pub fn dies(&self) -> &[Die] {
        &self.dies
    }

    /// The packaged dies.
    pub fn packaged(&self) -> impl Iterator<Item = &Die> {
        self.dies.iter().filter(|d| d.packaged)
    }

    /// Tests the first `n` packaged chips (the paper's random selection
    /// of 32), returning the count per Table IV class.
    #[must_use]
    pub fn test_campaign(&self, n: usize) -> YieldCounts {
        let mut counts = YieldCounts::default();
        for die in self.packaged().take(n) {
            counts.record(die.status);
        }
        counts
    }

    /// Re-runs the campaign assuming the SRAM row/column repair flow
    /// (§IV-A: "Piton has the ability to remap rows and columns in
    /// SRAMs to repair such errors, but a repair flow is still in
    /// development"). Deterministically-failing SRAM defects repair
    /// with probability `success_rate`; marginal cells and shorts do
    /// not. Returns the post-repair counts.
    #[must_use]
    pub fn repair_campaign(&self, n: usize, success_rate: f64, seed: u64) -> YieldCounts {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = YieldCounts::default();
        for die in self.packaged().take(n) {
            let status = match die.status {
                ChipStatus::UnstableDeterministic if rng.gen_range(0.0..1.0) < success_rate => {
                    ChipStatus::Good
                }
                s => s,
            };
            counts.record(status);
        }
        counts
    }
}

/// Yield counts per class (the Table IV numbers).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct YieldCounts {
    /// Stable, fully functional.
    pub good: u32,
    /// Deterministically unstable (bad SRAM cells).
    pub unstable_deterministic: u32,
    /// High VCS current.
    pub bad_vcs_short: u32,
    /// High VDD current.
    pub bad_vdd_short: u32,
    /// Nondeterministically unstable.
    pub unstable_nondeterministic: u32,
}

impl YieldCounts {
    fn record(&mut self, s: ChipStatus) {
        match s {
            ChipStatus::Good => self.good += 1,
            ChipStatus::UnstableDeterministic => self.unstable_deterministic += 1,
            ChipStatus::BadVcsShort => self.bad_vcs_short += 1,
            ChipStatus::BadVddShort => self.bad_vdd_short += 1,
            ChipStatus::UnstableNondeterministic => self.unstable_nondeterministic += 1,
        }
    }

    /// Total chips tested.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.good
            + self.unstable_deterministic
            + self.bad_vcs_short
            + self.bad_vdd_short
            + self.unstable_nondeterministic
    }

    /// Percentage of the total for one class count.
    #[must_use]
    pub fn percent(&self, count: u32) -> f64 {
        100.0 * f64::from(count) / f64::from(self.total())
    }
}

/// Seed reproducing the exact Table IV counts for the default
/// 32-chip campaign (found by search; see the `seed_reproduces_table_iv`
/// test).
pub const PITON_RUN_SEED: u64 = 132;

/// Searches `range` for a population seed whose default 32-chip
/// campaign reproduces the exact Table IV counts (19/7/4/1/1). This is
/// how [`PITON_RUN_SEED`] was found.
///
/// # Errors
///
/// [`PitonError::SeedNotFound`] naming the exhausted range.
pub fn find_table_iv_seed(range: std::ops::Range<u64>) -> Result<u64, PitonError> {
    let (lo, hi) = (range.start, range.end);
    for seed in range {
        let pop = ChipPopulation::generate(118, 45, DefectRates::table_iv(), seed);
        let c = pop.test_campaign(32);
        if (
            c.good,
            c.unstable_deterministic,
            c.bad_vcs_short,
            c.bad_vdd_short,
            c.unstable_nondeterministic,
        ) == (19, 7, 4, 1, 1)
        {
            return Ok(seed);
        }
    }
    Err(PitonError::SeedNotFound { lo, hi })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_chip_corners_are_ordered() {
        let c1 = NamedChip::Chip1.corner();
        let c2 = NamedChip::Chip2.corner();
        let c3 = NamedChip::Chip3.corner();
        assert!(c1.speed > c2.speed && c2.speed > c3.speed);
        assert!(c1.leakage > c2.leakage && c2.leakage > c3.leakage);
    }

    #[test]
    fn population_sizes_match_the_run() {
        let pop = ChipPopulation::piton_run();
        assert_eq!(pop.dies().len(), 118);
        assert_eq!(pop.packaged().count(), 45);
    }

    #[test]
    fn seed_reproduces_table_iv() {
        let counts = ChipPopulation::piton_run().test_campaign(32);
        assert_eq!(counts.total(), 32);
        assert_eq!(
            (
                counts.good,
                counts.unstable_deterministic,
                counts.bad_vcs_short,
                counts.bad_vdd_short,
                counts.unstable_nondeterministic
            ),
            (19, 7, 4, 1, 1),
            "PITON_RUN_SEED does not reproduce Table IV"
        );
    }

    #[test]
    fn percentages_match_table_iv() {
        let counts = ChipPopulation::piton_run().test_campaign(32);
        assert!((counts.percent(counts.good) - 59.4).abs() < 0.1);
        assert!((counts.percent(counts.unstable_deterministic) - 21.9).abs() < 0.1);
        assert!((counts.percent(counts.bad_vcs_short) - 12.5).abs() < 0.1);
    }

    #[test]
    fn sram_repair_recovers_only_deterministic_failures() {
        let pop = ChipPopulation::piton_run();
        let before = pop.test_campaign(32);
        // A perfect repair flow recovers all 7 deterministic failures.
        let perfect = pop.repair_campaign(32, 1.0, 1);
        assert_eq!(perfect.good, before.good + before.unstable_deterministic);
        assert_eq!(perfect.unstable_deterministic, 0);
        assert_eq!(perfect.bad_vcs_short, before.bad_vcs_short);
        assert_eq!(perfect.unstable_nondeterministic, 1);
        // A useless flow changes nothing.
        let none = pop.repair_campaign(32, 0.0, 1);
        assert_eq!(none, before);
        // Totals always preserved.
        for rate in [0.0, 0.3, 0.7, 1.0] {
            assert_eq!(pop.repair_campaign(32, rate, 2).total(), 32);
        }
    }

    #[test]
    fn fast_dies_leak_more_on_average() {
        let pop = ChipPopulation::generate(2_000, 2_000, DefectRates::table_iv(), 99);
        let (mut fast_leak, mut slow_leak) = (0.0, 0.0);
        let (mut fast_n, mut slow_n) = (0u32, 0u32);
        for d in pop.dies() {
            if d.corner.speed > 1.0 {
                fast_leak += d.corner.leakage;
                fast_n += 1;
            } else {
                slow_leak += d.corner.leakage;
                slow_n += 1;
            }
        }
        assert!(fast_leak / f64::from(fast_n) > slow_leak / f64::from(slow_n));
    }

    #[test]
    fn only_good_chips_are_usable() {
        assert!(ChipStatus::Good.is_usable());
        for s in ChipStatus::ALL {
            if s != ChipStatus::Good {
                assert!(!s.is_usable(), "{s:?}");
            }
        }
    }

    #[test]
    fn faulty_core_masks_map_table_iv_classes() {
        let die = |serial, status| Die {
            serial,
            corner: ChipCorner::default(),
            status,
            packaged: true,
        };
        assert_eq!(die(0, ChipStatus::Good).faulty_core_mask(), 0);
        assert_eq!(
            die(1, ChipStatus::BadVddShort).faulty_core_mask(),
            (1 << 25) - 1
        );
        assert_eq!(
            die(1, ChipStatus::BadVcsShort).faulty_core_mask(),
            (1 << 25) - 1
        );
        for serial in 0..64 {
            let m = die(serial, ChipStatus::UnstableNondeterministic).faulty_core_mask();
            assert_eq!(m.count_ones(), 1, "serial {serial}: {m:#x}");
            let m = die(serial, ChipStatus::UnstableDeterministic).faulty_core_mask();
            assert!((1..=2).contains(&m.count_ones()), "serial {serial}: {m:#x}");
            assert!(m < 1 << 25, "mask must stay within the 25-tile array");
            // Deterministic per serial.
            assert_eq!(
                m,
                die(serial, ChipStatus::UnstableDeterministic).faulty_core_mask()
            );
        }
        // Defects land on different tiles for different dies.
        let distinct: std::collections::HashSet<u32> = (0..16)
            .map(|s| die(s, ChipStatus::UnstableNondeterministic).faulty_core_mask())
            .collect();
        assert!(distinct.len() > 8, "only {} distinct masks", distinct.len());
    }

    #[test]
    fn table_iv_metadata_strings() {
        assert_eq!(ChipStatus::BadVcsShort.possible_cause(), "Short");
        assert_eq!(
            ChipStatus::UnstableDeterministic.possible_cause(),
            "Bad SRAM cells"
        );
        assert_eq!(ChipStatus::Good.symptom(), "Stable operation");
    }
}

#[cfg(test)]
mod seed_search {
    use super::*;

    #[test]
    #[ignore = "one-off seed search utility"]
    fn find_seed() {
        // The error path names the searched range, so an exhausted
        // search reports exactly what was tried instead of panicking.
        match find_table_iv_seed(0..1_000_000) {
            Ok(seed) => println!("SEED={seed}"),
            Err(e) => panic!("seed search failed: {e}"),
        }
    }

    #[test]
    fn exhausted_search_names_its_range() {
        // A range too small to contain a Table IV seed: the error says
        // exactly what was searched.
        let err = find_table_iv_seed(0..3).unwrap_err();
        assert_eq!(err, PitonError::SeedNotFound { lo: 0, hi: 3 });
        assert_eq!(
            err.to_string(),
            "no seed in 0..3 reproduces the Table IV counts"
        );
        // And the known-good seed is inside any range covering it.
        assert_eq!(
            find_table_iv_seed(PITON_RUN_SEED..PITON_RUN_SEED + 1).unwrap(),
            PITON_RUN_SEED
        );
    }
}
