//! The assembled experimental system: chip + board + cooling +
//! measurement loop.
//!
//! [`PitonSystem`] is the virtual counterpart of Figure 3: a simulated
//! Piton die (with its process corner) in the socket of the test board,
//! bench supplies with remote sense on all three rails, I²C monitors
//! behind sense resistors, and the heat-sink/fan stack. Experiments load
//! workloads onto the machine, let it reach steady state, and collect
//! 128-sample measurement windows exactly as §III-A describes.
//!
//! **Time dilation.** The real monitors poll at 17 Hz — 29 million core
//! cycles apart. Simulating every cycle between samples would be
//! pointless for steady-state workloads, so each sample is backed by a
//! *chunk* of simulated cycles (default 10 000) whose average power
//! stands in for the 1/17 s interval; the thermal model still advances
//! by the real 1/17 s per sample. This preserves the paper's
//! methodology (steady-state mean ± stddev) at tractable cost.
//!
//! # Examples
//!
//! ```
//! use piton_board::system::PitonSystem;
//!
//! let mut sys = PitonSystem::reference_chip_2();
//! let idle = sys.measure_idle_power();
//! assert!((idle.mean.as_mw() - 2015.3).abs() < 30.0); // Table V
//! ```

use piton_arch::config::ChipConfig;
use piton_arch::error::PitonError;
use piton_arch::units::{Hertz, Joules, Seconds, Volts, Watts};
use piton_obs::{metrics, trace};
use piton_power::governor::Governor;
use piton_power::model::{OperatingPoint, PowerModel, RailPower};
use piton_power::thermal::{Cooling, ThermalModel, ThermalStep};
use piton_power::{Calibration, ChipCorner, TechModel};
use piton_sim::machine::Machine;
use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;
use crate::monitor::{window_duration, Measured, MeasurementWindow, MonitorChannel, Quality};
use crate::population::{Die, NamedChip};
use crate::supply::PowerRails;

/// Default simulated cycles backing one monitor sample.
pub const DEFAULT_CHUNK_CYCLES: u64 = 10_000;

/// A three-rail measurement result.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RailMeasurement {
    /// Core rail.
    pub vdd: Measured,
    /// SRAM rail.
    pub vcs: Measured,
    /// I/O rail.
    pub vio: Measured,
    /// VDD + VCS — the chip power the paper reports.
    pub total: Measured,
    /// Bench-side health of the window that produced this measurement
    /// (all-zero when no fault plan is attached).
    pub quality: Quality,
}

/// Result of running a finite workload to completion under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadRun {
    /// Execution time (cycles / core clock).
    pub elapsed: Seconds,
    /// Chip energy (VDD + VCS) integrated over the run.
    pub energy: Joules,
    /// Mean chip power over the run.
    pub mean_power: Watts,
    /// Cycles executed.
    pub cycles: u64,
    /// Whether all threads halted before the cycle limit.
    pub completed: bool,
}

/// One control step of a governed run: the closed loop's state after
/// the governor's decision took effect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernedSample {
    /// Wall time at the end of the step (s).
    pub time_s: f64,
    /// Clock the governor holds after this step.
    pub freq: Hertz,
    /// Rail setpoint after this step.
    pub vdd: Volts,
    /// True chip power (VDD + VCS) of the step's chunk.
    pub power: Watts,
    /// Junction temperature after the thermal step (°C).
    pub junction_c: f64,
    /// Package surface temperature after the thermal step (°C) — what
    /// the FLIR camera in Figure 18 images.
    pub surface_c: f64,
    /// Whether the governor was limited by temperature this step.
    pub thermally_limited: bool,
}

/// Result of driving the machine under a closed-loop governor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernedRun {
    /// Per-control-step trajectory.
    pub samples: Vec<GovernedSample>,
    /// Operating-point changes over the run.
    pub transitions: u64,
    /// Steps decided at or above the thermal limit.
    pub throttled_steps: u64,
    /// Chip energy (VDD + VCS) integrated over the run.
    pub energy: Joules,
    /// Cycles executed.
    pub cycles: u64,
    /// Whether all threads halted before the step budget ran out.
    pub completed: bool,
}

impl GovernedRun {
    /// Mean of the held frequencies over the run.
    #[must_use]
    pub fn mean_frequency(&self) -> Hertz {
        if self.samples.is_empty() {
            return Hertz(0.0);
        }
        Hertz(self.samples.iter().map(|s| s.freq.0).sum::<f64>() / self.samples.len() as f64)
    }

    /// Hottest junction temperature seen.
    #[must_use]
    pub fn peak_junction_c(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.junction_c)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Frequency held at the end of the run (Hz), if any step ran.
    #[must_use]
    pub fn final_frequency(&self) -> Option<Hertz> {
        self.samples.last().map(|s| s.freq)
    }
}

/// The full experimental setup of Figure 3.
#[derive(Debug, Clone)]
pub struct PitonSystem {
    machine: Machine,
    model: PowerModel,
    rails: PowerRails,
    thermal: ThermalModel,
    freq: Hertz,
    chunk_cycles: u64,
    mon_vdd: MonitorChannel,
    mon_vcs: MonitorChannel,
    mon_vio: MonitorChannel,
    fault: Option<FaultPlan>,
    core_mask: u32,
}

impl PitonSystem {
    /// Builds a system around a die with the given corner, with the
    /// default board, cooling and ambient. `seed` drives measurement
    /// noise.
    #[must_use]
    pub fn new(cfg: &ChipConfig, corner: ChipCorner, seed: u64) -> Self {
        Self {
            machine: Machine::new(cfg),
            model: PowerModel::new(Calibration::piton_hpca18(), TechModel::ibm32soi(), corner),
            rails: PowerRails::table_iii(),
            thermal: ThermalModel::new(Cooling::HeatsinkFan, 20.0),
            freq: Hertz::from_mhz(500.05),
            chunk_cycles: DEFAULT_CHUNK_CYCLES,
            mon_vdd: MonitorChannel::piton_board(seed),
            mon_vcs: MonitorChannel::piton_board(seed.wrapping_add(1)),
            mon_vio: MonitorChannel::piton_board(seed.wrapping_add(2)),
            fault: None,
            core_mask: 0,
        }
    }

    /// Builds the degraded system a specific packaged die yields: its
    /// process corner, with its faulty cores fused off (routers still
    /// forwarding) exactly as the paper ran its 24-core chips.
    #[must_use]
    pub fn for_die(die: &Die, seed: u64) -> Self {
        let mut sys = Self::new(&ChipConfig::piton(), die.corner, seed);
        sys.set_core_mask(die.faulty_core_mask());
        sys
    }

    /// Attaches a fault plan: monitor channels start drawing injected
    /// faults and [`Self::try_measure`] honours the plan's brownout
    /// window. Without monitor-fault rates and brownout this is a no-op
    /// (measurement stays byte-identical to the fault-free bench).
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        self.mon_vdd.attach_faults(plan);
        self.mon_vcs.attach_faults(plan);
        self.mon_vio.attach_faults(plan);
        self.fault = Some(plan.clone());
    }

    /// The attached fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Fuses off the cores in `mask` (bit *i* = tile *i*); their routers
    /// keep forwarding. The mask survives [`Self::reset_machine`], like
    /// real fused-off silicon.
    pub fn set_core_mask(&mut self, mask: u32) {
        self.core_mask = mask;
        self.machine.apply_core_mask(mask);
    }

    /// The fused-off core mask.
    #[must_use]
    pub fn core_mask(&self) -> u32 {
        self.core_mask
    }

    /// Chip #1: fast but leaky.
    #[must_use]
    pub fn reference_chip_1() -> Self {
        Self::new(&ChipConfig::piton(), NamedChip::Chip1.corner(), 1)
    }

    /// Chip #2: the typical die used for most of the paper's studies.
    #[must_use]
    pub fn reference_chip_2() -> Self {
        Self::new(&ChipConfig::piton(), NamedChip::Chip2.corner(), 2)
    }

    /// Chip #3: the microbenchmark die.
    #[must_use]
    pub fn reference_chip_3() -> Self {
        Self::new(&ChipConfig::piton(), NamedChip::Chip3.corner(), 3)
    }

    /// The simulated machine (load workloads here).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Replaces the machine with a fresh idle one (power-cycle). Fused
    /// off cores stay fused off.
    pub fn reset_machine(&mut self) {
        self.machine = Machine::new(&self.machine.config().clone());
        self.machine.apply_core_mask(self.core_mask);
    }

    /// The power model of the socketed die.
    #[must_use]
    pub fn power_model(&self) -> &PowerModel {
        &self.model
    }

    /// The thermal state.
    #[must_use]
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// Mutable thermal access (e.g. removing the heat sink for §IV-J).
    pub fn thermal_mut(&mut self) -> &mut ThermalModel {
        &mut self.thermal
    }

    /// The supply rails.
    #[must_use]
    pub fn rails(&self) -> &PowerRails {
        &self.rails
    }

    /// Programs VDD (VCS tracks at +0.05 V).
    pub fn set_vdd_tracked(&mut self, vdd: Volts) {
        self.rails.set_vdd_tracked(vdd);
    }

    /// Sets the core clock.
    pub fn set_frequency(&mut self, f: Hertz) {
        self.freq = f;
    }

    /// Current core clock.
    #[must_use]
    pub fn frequency(&self) -> Hertz {
        self.freq
    }

    /// Sets the cycles simulated per monitor sample.
    pub fn set_chunk_cycles(&mut self, cycles: u64) {
        assert!(cycles > 0, "chunk must be non-empty");
        self.chunk_cycles = cycles;
    }

    /// The operating point implied by the current rails, clock and
    /// junction temperature.
    #[must_use]
    pub fn operating_point(&self) -> OperatingPoint {
        OperatingPoint {
            vdd: self.rails.vdd.setpoint(),
            vcs: self.rails.vcs.setpoint(),
            vio: self.rails.vio.setpoint(),
            freq: self.freq,
            junction_c: self.thermal.junction_c(),
        }
    }

    /// True (noise-free) rail power of one freshly simulated chunk.
    fn chunk_power(&mut self) -> RailPower {
        let before = self.machine.counters().clone();
        self.machine.run(self.chunk_cycles);
        let delta = self.machine.counters().delta_since(&before);
        self.model.power(&delta, self.operating_point())
    }

    /// Chunk power with VDD/VCS sagged to `factor` of their setpoints —
    /// what the chip actually draws during a supply brownout.
    fn chunk_power_browned(&mut self, factor: f64) -> RailPower {
        let before = self.machine.counters().clone();
        self.machine.run(self.chunk_cycles);
        let delta = self.machine.counters().delta_since(&before);
        let mut op = self.operating_point();
        op.vdd = Volts(op.vdd.0 * factor);
        op.vcs = Volts(op.vcs.0 * factor);
        self.model.power(&delta, op)
    }

    /// Runs the machine for `cycles` without measuring (reaching the
    /// steady state the paper requires before sampling), settling the
    /// thermal state to the resulting power.
    ///
    /// Cooperates with the runner's per-attempt deadline budget
    /// (`piton_arch::deadline`): once the budget is blown the warm-up
    /// stops early — the subsequent measurement call then fails the
    /// deadline check, so the point degrades into a retry or a hole
    /// instead of stalling the sweep. Without an armed deadline the
    /// chunked run is cycle-for-cycle identical to a single run call.
    pub fn warm_up(&mut self, cycles: u64) {
        let before = self.machine.counters().clone();
        let mut remaining = cycles;
        while remaining > 0 {
            if piton_arch::deadline::exceeded() {
                break;
            }
            let step = remaining.min(1_000);
            self.machine.run(step);
            remaining -= step;
        }
        let delta = self.machine.counters().delta_since(&before);
        // Settle at the leakage-aware fixed point: power depends on
        // junction temperature, which depends on power.
        let op0 = self.operating_point();
        let (t_eq, _) = self.thermal.equilibrium(
            |t| {
                self.model
                    .power(&delta, op0.with_junction(t))
                    .total_with_io()
                    * 0.9
            },
            120.0,
        );
        self.thermal.settle_to_junction(t_eq);
    }

    /// Collects a measurement window of `samples` monitor polls while
    /// the loaded workload runs.
    ///
    /// # Panics
    ///
    /// Panics if the attached fault plan drops *every* sample of a rail
    /// window — use [`Self::try_measure`] where that must be survivable.
    pub fn measure(&mut self, samples: usize) -> RailMeasurement {
        self.try_measure(samples)
            .expect("measurement window fully dropped under fault plan")
    }

    /// Fallible [`Self::measure`]: collects the window under the
    /// attached fault plan (injected monitor faults, bounded retry,
    /// brownout sag, outlier rejection), reporting what the bench had to
    /// tolerate in the result's `quality`.
    ///
    /// Without an attached plan the sampling sequence — and therefore
    /// every byte of downstream output — is identical to the historical
    /// infallible path.
    ///
    /// # Errors
    ///
    /// [`PitonError::EmptyWindow`] if every sample of some rail was
    /// dropped, or the transient [`PitonError::DeadlineExceeded`] if
    /// the runner's per-attempt budget expires mid-window.
    pub fn try_measure(&mut self, samples: usize) -> Result<RailMeasurement, PitonError> {
        let dt = Seconds(window_duration(samples).0 / samples as f64);
        let mut w_vdd = MeasurementWindow::new();
        let mut w_vcs = MeasurementWindow::new();
        let mut w_vio = MeasurementWindow::new();
        let mut w_tot = MeasurementWindow::new();
        let mut quality = Quality::default();
        let faulty = self
            .fault
            .as_ref()
            .is_some_and(|p| p.has_monitor_faults() || p.brownout.is_some());
        let brownout = self.fault.as_ref().and_then(|p| p.brownout);
        for i in 0..samples {
            piton_arch::deadline::check("measurement window")?;
            let p = match brownout.filter(|b| b.covers(i)) {
                Some(b) => self.chunk_power_browned(b.factor),
                None => self.chunk_power(),
            };
            self.thermal.step(p.total_with_io() * 0.9, dt);
            if faulty {
                let svdd = self.mon_vdd.sample_with_retry(p.vdd, &mut quality);
                let svcs = self.mon_vcs.sample_with_retry(p.vcs, &mut quality);
                let svio = self.mon_vio.sample_with_retry(p.vio, &mut quality);
                w_vdd.extend(svdd);
                w_vcs.extend(svcs);
                w_vio.extend(svio);
                if let (Some(a), Some(b)) = (svdd, svcs) {
                    w_tot.push(a + b);
                }
            } else {
                let svdd = self.mon_vdd.sample(p.vdd);
                let svcs = self.mon_vcs.sample(p.vcs);
                let svio = self.mon_vio.sample(p.vio);
                w_vdd.push(svdd);
                w_vcs.push(svcs);
                w_vio.push(svio);
                w_tot.push(svdd + svcs);
            }
        }
        if faulty {
            Ok(RailMeasurement {
                vdd: w_vdd.robust_stats(&mut quality)?,
                vcs: w_vcs.robust_stats(&mut quality)?,
                vio: w_vio.robust_stats(&mut quality)?,
                total: w_tot.robust_stats(&mut quality)?,
                quality,
            })
        } else {
            quality.kept = u32::try_from(3 * samples).expect("window fits in u32");
            Ok(RailMeasurement {
                vdd: Measured::from_window(&w_vdd)?,
                vcs: Measured::from_window(&w_vcs)?,
                vio: Measured::from_window(&w_vio)?,
                total: Measured::from_window(&w_tot)?,
                quality,
            })
        }
    }

    /// Measures the default 128-sample window.
    pub fn measure_default(&mut self) -> RailMeasurement {
        self.measure(crate::monitor::DEFAULT_SAMPLES)
    }

    /// Idle power (clocks running, all threads idle) — the Table V
    /// measurement. Resets the machine first.
    pub fn measure_idle_power(&mut self) -> Measured {
        self.reset_machine();
        self.warm_up(10_000);
        self.measure(64).total
    }

    /// Static power (all inputs including clocks grounded) — no dynamic
    /// activity at all, leakage at the thermal equilibrium.
    pub fn measure_static_power(&mut self) -> Measured {
        let op_cold = self.operating_point();
        let (t_eq, _) = self.thermal.equilibrium(
            |t| {
                self.model
                    .static_power(op_cold.with_junction(t))
                    .total_with_io()
            },
            120.0,
        );
        let p = self.model.static_power(op_cold.with_junction(t_eq)).total();
        let mut w = MeasurementWindow::new();
        for _ in 0..64 {
            w.push(self.mon_vdd.sample(p));
        }
        Measured::from_window(&w).expect("static window is never empty")
    }

    /// Runs the loaded workload to completion (or `max_cycles`),
    /// integrating power into energy — the §IV-H2 energy methodology
    /// (energy derived from power and execution time).
    pub fn run_measured(&mut self, max_cycles: u64) -> WorkloadRun {
        let start_cycle = self.machine.now();
        let mut energy = Joules(0.0);
        let mut power_time = Joules(0.0);
        while self.machine.any_running() && self.machine.now() - start_cycle < max_cycles {
            let before = self.machine.counters().clone();
            let chunk = self
                .chunk_cycles
                .min(max_cycles - (self.machine.now() - start_cycle));
            self.machine.run(chunk);
            let delta = self.machine.counters().delta_since(&before);
            if delta.cycles == 0 {
                break;
            }
            let p = self.model.power(&delta, self.operating_point());
            let t = self.freq.period() * delta.cycles as f64;
            energy += p.total() * t;
            power_time += p.total() * t;
            self.thermal.step(p.total_with_io() * 0.9, t);
        }
        let cycles = self.machine.now() - start_cycle;
        let elapsed = self.freq.period() * cycles as f64;
        WorkloadRun {
            elapsed,
            energy,
            mean_power: if elapsed.0 > 0.0 {
                power_time / elapsed
            } else {
                Watts(0.0)
            },
            cycles,
            completed: !self.machine.any_running(),
        }
    }

    /// Drives the loaded workload under a closed-loop DVFS governor for
    /// up to `steps` fixed-timestep control steps (or until every
    /// thread halts): per step, simulate one chunk at the held
    /// operating point, advance the thermal model, integrate energy,
    /// then let the governor pick the next operating point from the
    /// junction temperature and the chunk's activity window.
    ///
    /// `dt` selects the step's thermal timestep: `Some(dt)` dilates
    /// time exactly like [`Self::measure`] (each chunk stands in for a
    /// longer real interval — use for thermal studies), `None` uses the
    /// chunk's real duration at the held clock (use for
    /// energy-to-completion runs, where elapsed time is the point).
    ///
    /// An attached fault plan's brownout window sags the rails exactly
    /// as in [`Self::try_measure`], and the sag also lowers the
    /// capability curve the governor sees. Fused-off cores never
    /// execute, so they contribute no activity to the power fed into
    /// the thermal model.
    pub fn run_governed(
        &mut self,
        governor: &mut Governor,
        steps: usize,
        dt: Option<Seconds>,
    ) -> GovernedRun {
        let stats0 = governor.stats();
        self.set_vdd_tracked(governor.vdd());
        self.set_frequency(governor.frequency());
        let stepper = dt.map(|d| ThermalStep::new(d.0));
        let brownout = self.fault.as_ref().and_then(|p| p.brownout);
        let start_cycle = self.machine.now();
        let mut energy = Joules(0.0);
        let mut time_s = 0.0;
        let mut samples = Vec::with_capacity(steps);
        for i in 0..steps {
            if !self.machine.any_running() {
                break;
            }
            let sag = brownout.filter(|b| b.covers(i)).map_or(1.0, |b| b.factor);
            let before = self.machine.counters().clone();
            self.machine.run(self.chunk_cycles);
            let delta = self.machine.counters().delta_since(&before);
            if delta.cycles == 0 {
                break;
            }
            let mut op = self.operating_point();
            op.vdd = Volts(op.vdd.0 * sag);
            op.vcs = Volts(op.vcs.0 * sag);
            let p = self.model.power(&delta, op);
            // The governor loop heats the die with the core-rail total,
            // the same power the V/F solver's boot-equilibrium oracle
            // and the Figure 17/18 scheduling studies integrate — so a
            // closed-loop run is directly comparable to both.
            let step_dt = match stepper {
                Some(s) => {
                    s.advance(&mut self.thermal, p.total());
                    s.dt()
                }
                None => {
                    let d = self.freq.period() * delta.cycles as f64;
                    self.thermal.step(p.total(), d);
                    d
                }
            };
            energy += p.total() * step_dt;
            time_s += step_dt.0;
            let t_j = self.thermal.junction_c();
            let choice = governor.step_sagged(t_j, &delta, sag);
            let khz = (choice.freq.0 / 1_000.0).round() as u64;
            if choice.freq != self.freq || choice.vdd != self.rails.vdd.setpoint() {
                self.set_vdd_tracked(choice.vdd);
                self.set_frequency(choice.freq);
                if trace::active() {
                    trace::emit(trace::TraceEvent::Governor {
                        cycle: self.machine.now(),
                        khz,
                        millicelsius: (t_j * 1_000.0).round() as i64,
                        policy: governor.policy().label().to_owned(),
                    });
                }
                metrics::counter_add("governor.transitions", 1);
            }
            self.machine.set_governed_khz(Some(khz));
            metrics::counter_add("governor.steps", 1);
            if choice.thermally_limited {
                metrics::counter_add("governor.throttled_steps", 1);
            }
            metrics::histogram_observe("governor.freq_mhz", khz / 1_000);
            samples.push(GovernedSample {
                time_s,
                freq: choice.freq,
                vdd: choice.vdd,
                power: p.total(),
                junction_c: self.thermal.junction_c(),
                surface_c: self.thermal.surface_c(),
                thermally_limited: choice.thermally_limited,
            });
        }
        let stats = governor.stats();
        GovernedRun {
            samples,
            transitions: stats.transitions - stats0.transitions,
            throttled_steps: stats.throttled_steps - stats0.throttled_steps,
            energy,
            cycles: self.machine.now() - start_cycle,
            completed: !self.machine.any_running(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piton_arch::isa::{Instruction, Opcode, Reg};
    use piton_arch::topology::TileId;
    use piton_sim::program::Program;

    #[test]
    fn idle_power_reproduces_table_v() {
        let mut sys = PitonSystem::reference_chip_2();
        sys.set_chunk_cycles(2_000);
        let idle = sys.measure_idle_power();
        assert!(
            (idle.mean.as_mw() - 2015.3).abs() < 30.0,
            "idle {}",
            idle.mean.as_mw()
        );
        assert!(idle.stddev.as_mw() < 10.0);
    }

    #[test]
    fn static_power_reproduces_table_v() {
        let mut sys = PitonSystem::reference_chip_2();
        let s = sys.measure_static_power();
        assert!(
            (s.mean.as_mw() - 389.3).abs() < 25.0,
            "static {}",
            s.mean.as_mw()
        );
    }

    #[test]
    fn chip_3_is_cooler_than_chip_2() {
        let mut s2 = PitonSystem::reference_chip_2();
        let mut s3 = PitonSystem::reference_chip_3();
        s2.set_chunk_cycles(2_000);
        s3.set_chunk_cycles(2_000);
        let i2 = s2.measure_idle_power();
        let i3 = s3.measure_idle_power();
        assert!(i3.mean < i2.mean);
        // Chip #3 idle ≈ 1906 mW.
        assert!(
            (i3.mean.as_mw() - 1906.2).abs() < 40.0,
            "{}",
            i3.mean.as_mw()
        );
    }

    #[test]
    fn busy_cores_raise_power_over_idle() {
        let mut sys = PitonSystem::reference_chip_2();
        sys.set_chunk_cycles(2_000);
        let idle = sys.measure_idle_power();

        sys.reset_machine();
        let p = Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), 0x0F0F),
            Instruction::movi(Reg::new(2), 0x3333),
            Instruction::alu(Opcode::Add, Reg::new(3), Reg::new(1), Reg::new(2)),
            Instruction::alu(Opcode::And, Reg::new(4), Reg::new(1), Reg::new(2)),
            Instruction::branch(Opcode::Beq, Reg::G0, Reg::G0, 2),
        ]);
        sys.machine_mut().load_on_tiles(25, 0, &p);
        sys.warm_up(5_000);
        let busy = sys.measure(32);
        assert!(
            busy.total.mean > idle.mean + piton_arch::units::Watts(0.2),
            "busy {} vs idle {}",
            busy.total.mean,
            idle.mean
        );
    }

    #[test]
    fn run_measured_integrates_energy() {
        let mut sys = PitonSystem::reference_chip_2();
        sys.set_chunk_cycles(1_000);
        let p = Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), 50),
            Instruction::movi(Reg::new(2), 1),
            Instruction::alu(Opcode::Sub, Reg::new(1), Reg::new(1), Reg::new(2)),
            Instruction::branch(Opcode::Bne, Reg::new(1), Reg::G0, 2),
            Instruction::halt(),
        ]);
        sys.machine_mut().load_thread(TileId::new(0), 0, p);
        let run = sys.run_measured(100_000);
        assert!(run.completed);
        assert!(run.energy.0 > 0.0);
        assert!(run.elapsed.0 > 0.0);
        // Energy ≈ mean power × time.
        let recomputed = run.mean_power * run.elapsed;
        assert!((recomputed.0 - run.energy.0).abs() / run.energy.0 < 1e-6);
    }

    #[test]
    fn voltage_sweep_changes_power() {
        let mut sys = PitonSystem::reference_chip_2();
        sys.set_chunk_cycles(1_000);
        let at_nominal = sys.measure_idle_power();
        sys.set_vdd_tracked(Volts(0.8));
        sys.set_frequency(Hertz::from_mhz(285.74));
        let at_low = sys.measure_idle_power();
        assert!(at_low.mean < at_nominal.mean * 0.7);
    }

    #[test]
    fn no_fault_plan_measurement_is_byte_identical_to_the_plain_path() {
        let mut plain = PitonSystem::reference_chip_2();
        let mut planned = PitonSystem::reference_chip_2();
        // A plan with zero rates and no brownout must not perturb a bit.
        planned.inject_faults(&crate::fault::FaultPlan {
            drop_rate: 0.0,
            stuck_rate: 0.0,
            glitch_rate: 0.0,
            ..crate::fault::FaultPlan::with_seed(1)
        });
        plain.set_chunk_cycles(500);
        planned.set_chunk_cycles(500);
        let a = plain.measure(16);
        let b = planned.try_measure(16).unwrap();
        assert_eq!(a.total, b.total);
        assert_eq!(a.vdd, b.vdd);
        assert_eq!(a.vio, b.vio);
    }

    #[test]
    fn faulty_measurement_degrades_gracefully_and_reports_quality() {
        let plan = crate::fault::FaultPlan {
            drop_rate: 0.05,
            stuck_rate: 0.03,
            glitch_rate: 0.04,
            ..crate::fault::FaultPlan::with_seed(77)
        };
        let mut clean = PitonSystem::reference_chip_2();
        let mut faulty = PitonSystem::reference_chip_2();
        faulty.inject_faults(&plan);
        clean.set_chunk_cycles(500);
        faulty.set_chunk_cycles(500);
        clean.reset_machine();
        faulty.reset_machine();
        clean.warm_up(5_000);
        faulty.warm_up(5_000);
        let a = clean.measure(64);
        let b = faulty.try_measure(64).unwrap();
        assert!(!b.quality.is_clean(), "quality: {}", b.quality);
        // Outlier rejection keeps the degraded mean in the noise band.
        assert!(
            (a.total.mean.as_mw() - b.total.mean.as_mw()).abs() < 8.0,
            "clean {} vs faulty {}",
            a.total.mean,
            b.total.mean
        );
    }

    #[test]
    fn brownout_sag_is_rejected_as_outliers() {
        let plan = crate::fault::FaultPlan {
            brownout: Some(crate::fault::Brownout {
                start_sample: 20,
                samples: 8,
                factor: 0.85,
            }),
            drop_rate: 0.0,
            stuck_rate: 0.0,
            glitch_rate: 0.0,
            ..crate::fault::FaultPlan::with_seed(3)
        };
        let mut sys = PitonSystem::reference_chip_2();
        sys.inject_faults(&plan);
        sys.set_chunk_cycles(500);
        sys.reset_machine();
        sys.warm_up(5_000);
        let m = sys.try_measure(64).unwrap();
        assert!(
            m.quality.rejected >= 8,
            "brownout samples must be rejected: {}",
            m.quality
        );
        assert!(
            (m.total.mean.as_mw() - 2015.3).abs() < 30.0,
            "{}",
            m.total.mean
        );
    }

    #[test]
    fn for_die_fuses_off_faulty_cores_across_resets() {
        use crate::population::{ChipStatus, Die};
        use piton_power::ChipCorner;
        let die = Die {
            serial: 7,
            corner: ChipCorner::default(),
            status: ChipStatus::UnstableDeterministic,
            packaged: true,
        };
        let mask = die.faulty_core_mask();
        assert!(mask.count_ones() >= 1 && mask.count_ones() <= 2);
        let mut sys = PitonSystem::for_die(&die, 9);
        assert_eq!(sys.machine().disabled_cores(), mask.count_ones() as usize);
        sys.reset_machine();
        assert_eq!(
            sys.machine().disabled_cores(),
            mask.count_ones() as usize,
            "fused-off cores must survive a power cycle"
        );
    }

    #[test]
    fn governed_run_completes_and_tracks_the_governor() {
        use piton_power::governor::{Governor, GovernorConfig};
        let mut sys = PitonSystem::reference_chip_2();
        sys.set_chunk_cycles(1_000);
        let p = Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), 400),
            Instruction::movi(Reg::new(2), 1),
            Instruction::alu(Opcode::Sub, Reg::new(1), Reg::new(1), Reg::new(2)),
            Instruction::branch(Opcode::Bne, Reg::new(1), Reg::G0, 2),
            Instruction::halt(),
        ]);
        sys.machine_mut().load_thread(TileId::new(0), 0, p);
        let solver = piton_power::vf::VfSolver::new(sys.power_model().clone(), 20.0);
        let mut gov = Governor::new(
            GovernorConfig::RaceToHalt,
            solver,
            Volts(1.0),
            Hertz::from_mhz(500.05),
        );
        let run = sys.run_governed(&mut gov, 64, None);
        assert!(run.completed, "finite workload must halt");
        assert!(run.energy.0 > 0.0);
        assert!(!run.samples.is_empty());
        // The system's clock must end where the governor left it.
        assert_eq!(sys.frequency(), gov.frequency());
        assert_eq!(
            sys.machine().governed_khz(),
            Some((gov.frequency().0 / 1_000.0).round() as u64)
        );
    }

    #[test]
    fn governed_run_throttles_a_preheated_die() {
        use piton_power::governor::{Governor, GovernorConfig};
        use piton_power::vf::T_JUNCTION_LIMIT_C;
        let mut sys = PitonSystem::reference_chip_1();
        sys.set_chunk_cycles(1_000);
        sys.thermal_mut()
            .settle_to_junction(T_JUNCTION_LIMIT_C + 6.0);
        let p = Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), 0x5555),
            Instruction::alu(Opcode::Add, Reg::new(2), Reg::new(1), Reg::new(1)),
            Instruction::branch(Opcode::Beq, Reg::G0, Reg::G0, 1),
        ]);
        sys.machine_mut().load_on_tiles(25, 0, &p);
        let solver = piton_power::vf::VfSolver::new(sys.power_model().clone(), 20.0);
        let start = Hertz::from_mhz(500.05);
        let mut gov = Governor::new(GovernorConfig::ThrottleOnBoot, solver, Volts(1.0), start);
        // Time-dilated steps: hold the die hot long enough to force
        // several downward walks before the RC model cools it.
        let run = sys.run_governed(&mut gov, 8, Some(Seconds(0.05)));
        assert!(run.throttled_steps > 0, "preheated die must throttle");
        assert!(
            sys.frequency().0 < start.0,
            "clock must come down: {}",
            sys.frequency()
        );
    }

    #[test]
    fn operating_point_tracks_rails_and_thermal() {
        let mut sys = PitonSystem::reference_chip_2();
        sys.set_vdd_tracked(Volts(1.1));
        sys.set_frequency(Hertz::from_mhz(600.06));
        let op = sys.operating_point();
        assert_eq!(op.vdd, Volts(1.1));
        assert!((op.vcs.0 - 1.15).abs() < 1e-12);
        assert!((op.freq.as_mhz() - 600.06).abs() < 1e-9);
    }
}
