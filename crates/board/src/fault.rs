//! Seeded, deterministic bench-fault injection.
//!
//! The real measurement campaign ran on fallible hardware: I²C monitor
//! reads glitch (which is why §III-A averages 128 samples per reported
//! number), bench supplies brown out, and individual grid points of a
//! sweep hang or crash. A [`FaultPlan`] reproduces that fallibility
//! *deterministically*: every injected fault is drawn from a seeded
//! stream derived from the plan seed and the victim's own identity, so
//! the same plan produces byte-identical output at any `--jobs` level.
//!
//! Three fault classes are modelled:
//!
//! * **Monitor faults** (`drop`/`stuck`/`glitch` rates) — applied per
//!   I²C sample by [`FaultState`]: a dropped read fails outright (the
//!   channel retries with bounded backoff), a stuck ADC repeats the
//!   previous conversion, and a glitch returns a wildly out-of-range
//!   value (rejected later by window outlier rejection).
//! * **Supply brownouts** ([`Brownout`]) — a contiguous window of
//!   samples during which VDD/VCS sag to `factor` of their setpoints.
//! * **Sweep sabotage** ([`Sabotage`]) — named grid points of an
//!   experiment sweep that panic outright (`kill`) or fail transiently
//!   for their first attempts (`flaky`), exercising the runner's
//!   `catch_unwind` isolation and retry path.
//!
//! Plans are plain values threaded through `Fidelity`; a process-wide
//! registry ([`register`]/[`lookup`]) hands out `Copy`-able
//! [`FaultToken`]s so the plan can ride along in types that must stay
//! `Copy`.
//!
//! # Examples
//!
//! ```
//! use piton_board::fault::FaultPlan;
//!
//! let plan = FaultPlan::parse("seed=42,drop=0.05,glitch=0.02,kill=epi:3").unwrap();
//! assert_eq!(plan.seed, 42);
//! assert_eq!(plan.sabotage.len(), 1);
//! // Same spec, same plan — fault injection is reproducible.
//! assert_eq!(plan, FaultPlan::parse("seed=42,drop=0.05,glitch=0.02,kill=epi:3").unwrap());
//! ```

use std::sync::Mutex;

use piton_arch::error::PitonError;
use piton_arch::units::Watts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Bounded retries per monitor sample before it is declared lost.
pub const MAX_SAMPLE_RETRIES: u32 = 3;

/// A supply brownout: for `samples` consecutive monitor samples
/// starting at `start_sample`, VDD and VCS sag to `factor` of their
/// programmed setpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Brownout {
    /// First affected sample index within each measurement window.
    pub start_sample: usize,
    /// Number of consecutive affected samples.
    pub samples: usize,
    /// Voltage multiplier during the event (e.g. 0.9 = 10 % sag).
    pub factor: f64,
}

impl Brownout {
    /// Whether sample index `i` of a window falls inside the event.
    #[must_use]
    pub fn covers(&self, i: usize) -> bool {
        i >= self.start_sample && i < self.start_sample + self.samples
    }
}

/// How a sabotaged grid point fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SabotageKind {
    /// The point panics on every attempt — a permanent hole.
    Kill,
    /// The point fails transiently for its first `failing_attempts`
    /// attempts, then succeeds — exercises retry with reseeding.
    Flaky {
        /// Attempts that fail before the point recovers.
        failing_attempts: u32,
    },
}

/// One sabotaged grid point of a named experiment sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sabotage {
    /// Sweep section tag (e.g. `"epi"`, `"noc"`, `"scaling"`).
    pub section: String,
    /// Grid-point index within that sweep.
    pub index: usize,
    /// Failure mode.
    pub kind: SabotageKind,
}

/// A deterministic process-kill point: the process hard-aborts right
/// after the named grid point completes (and, when a result journal is
/// active, after its record is durably on disk). Exercises the
/// crash/resume path end to end.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPoint {
    /// Sweep section tag (e.g. `"epi"`, `"noc"`, `"scaling"`).
    pub section: String,
    /// Grid-point index within that sweep.
    pub index: usize,
}

/// Sweep sections that sabotage and crash entries may name. Grid-point
/// faults only make sense on sections that run through the fault-aware
/// sweep runner; a typo'd section would otherwise no-op silently.
pub const KNOWN_SECTIONS: &[&str] = &["epi", "noc", "scaling"];

/// A complete, deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed all fault streams derive from.
    pub seed: u64,
    /// P(one monitor read fails and must be retried).
    pub drop_rate: f64,
    /// P(the ADC repeats its previous conversion).
    pub stuck_rate: f64,
    /// P(a read returns a wildly out-of-range value).
    pub glitch_rate: f64,
    /// Optional supply brownout within each measurement window.
    pub brownout: Option<Brownout>,
    /// Sweep grid points to sabotage.
    pub sabotage: Vec<Sabotage>,
    /// Grid points after which the process hard-aborts.
    pub crash: Vec<CrashPoint>,
}

impl FaultPlan {
    /// The default plan for a bare `PITON_FAULT_SEED`: moderate monitor
    /// fault rates, no brownout, no sabotage.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.03,
            stuck_rate: 0.02,
            glitch_rate: 0.02,
            brownout: None,
            sabotage: Vec::new(),
            crash: Vec::new(),
        }
    }

    /// Whether the plan injects per-sample monitor faults.
    #[must_use]
    pub fn has_monitor_faults(&self) -> bool {
        self.drop_rate > 0.0 || self.stuck_rate > 0.0 || self.glitch_rate > 0.0
    }

    /// Whether the plan changes any measured value or sweep result.
    /// Crash points are deliberately *not* effects: they only decide
    /// when the process dies, never what it computes, so a crash-only
    /// plan must produce output byte-identical to no plan at all.
    #[must_use]
    pub fn has_effects(&self) -> bool {
        self.has_monitor_faults() || self.brownout.is_some() || !self.sabotage.is_empty()
    }

    /// The sabotage entry for a grid point, if any.
    #[must_use]
    pub fn sabotage_for(&self, section: &str, index: usize) -> Option<&Sabotage> {
        self.sabotage
            .iter()
            .find(|s| s.section == section && s.index == index)
    }

    /// Whether the process should hard-abort after this grid point.
    #[must_use]
    pub fn crash_for(&self, section: &str, index: usize) -> bool {
        self.crash
            .iter()
            .any(|c| c.section == section && c.index == index)
    }

    /// Parses the `--fault-plan` / `PITON_FAULT_PLAN` spec: a
    /// comma-separated `key=value` list.
    ///
    /// | key | value | meaning |
    /// |---|---|---|
    /// | `seed` | u64 | stream seed (default 0) |
    /// | `drop` | 0..1 | dropped-read probability |
    /// | `stuck` | 0..1 | stuck-ADC probability |
    /// | `glitch` | 0..1 | out-of-range-read probability |
    /// | `brownout` | `START+LEN@FACTOR` | supply sag window |
    /// | `kill` | `SECTION:IDX` | grid point that panics |
    /// | `flaky` | `SECTION:IDX[@N]` | point failing its first N (default 2) attempts |
    /// | `crash` | `SECTION:IDX` | process hard-aborts after the point completes |
    ///
    /// `SECTION` must be one of [`KNOWN_SECTIONS`]; a typo'd section is
    /// rejected at parse time instead of silently no-opping.
    ///
    /// # Errors
    ///
    /// Returns [`PitonError::BadPlan`] naming the offending entry.
    pub fn parse(spec: &str) -> Result<Self, PitonError> {
        let mut plan = Self {
            seed: 0,
            drop_rate: 0.0,
            stuck_rate: 0.0,
            glitch_rate: 0.0,
            brownout: None,
            sabotage: Vec::new(),
            crash: Vec::new(),
        };
        let bad = |entry: &str, why: &str| PitonError::BadPlan {
            what: format!("{entry:?}: {why}"),
        };
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| bad(entry, "expected key=value"))?;
            let rate = |v: &str| -> Result<f64, PitonError> {
                let r: f64 = v.parse().map_err(|_| bad(entry, "expected a number"))?;
                if (0.0..=1.0).contains(&r) {
                    Ok(r)
                } else {
                    Err(bad(entry, "rate must be within 0..=1"))
                }
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| bad(entry, "expected a u64"))?;
                }
                "drop" => plan.drop_rate = rate(value)?,
                "stuck" => plan.stuck_rate = rate(value)?,
                "glitch" => plan.glitch_rate = rate(value)?,
                "brownout" => {
                    let (range, factor) = value
                        .split_once('@')
                        .ok_or_else(|| bad(entry, "expected START+LEN@FACTOR"))?;
                    let (start, len) = range
                        .split_once('+')
                        .ok_or_else(|| bad(entry, "expected START+LEN@FACTOR"))?;
                    plan.brownout = Some(Brownout {
                        start_sample: start.parse().map_err(|_| bad(entry, "bad start sample"))?,
                        samples: len.parse().map_err(|_| bad(entry, "bad sample count"))?,
                        factor: rate(factor)?,
                    });
                }
                "kill" | "flaky" | "crash" => {
                    let (section, rest) = value
                        .split_once(':')
                        .ok_or_else(|| bad(entry, "expected SECTION:IDX"))?;
                    if !KNOWN_SECTIONS.contains(&section) {
                        return Err(bad(
                            entry,
                            &format!("unknown section {section:?} (known: {KNOWN_SECTIONS:?})"),
                        ));
                    }
                    if key == "crash" {
                        plan.crash.push(CrashPoint {
                            section: section.to_owned(),
                            index: rest.parse().map_err(|_| bad(entry, "bad point index"))?,
                        });
                        continue;
                    }
                    let (idx, attempts) = match rest.split_once('@') {
                        Some((i, n)) => (
                            i,
                            n.parse()
                                .map_err(|_| bad(entry, "bad failing-attempt count"))?,
                        ),
                        None => (rest, 2),
                    };
                    plan.sabotage.push(Sabotage {
                        section: section.to_owned(),
                        index: idx.parse().map_err(|_| bad(entry, "bad point index"))?,
                        kind: if key == "kill" {
                            SabotageKind::Kill
                        } else {
                            SabotageKind::Flaky {
                                failing_attempts: attempts,
                            }
                        },
                    });
                }
                _ => return Err(bad(entry, "unknown key")),
            }
        }
        Ok(plan)
    }

    /// Renders the plan back into a canonical [`FaultPlan::parse`] spec
    /// string: `FaultPlan::parse(&plan.render())` reconstructs an equal
    /// plan (rates rely on `f64`'s shortest-round-trip `Display`).
    #[must_use]
    pub fn render(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        if self.drop_rate > 0.0 {
            parts.push(format!("drop={}", self.drop_rate));
        }
        if self.stuck_rate > 0.0 {
            parts.push(format!("stuck={}", self.stuck_rate));
        }
        if self.glitch_rate > 0.0 {
            parts.push(format!("glitch={}", self.glitch_rate));
        }
        if let Some(b) = &self.brownout {
            parts.push(format!(
                "brownout={}+{}@{}",
                b.start_sample, b.samples, b.factor
            ));
        }
        for s in &self.sabotage {
            parts.push(match s.kind {
                SabotageKind::Kill => format!("kill={}:{}", s.section, s.index),
                SabotageKind::Flaky { failing_attempts } => {
                    format!("flaky={}:{}@{failing_attempts}", s.section, s.index)
                }
            });
        }
        for c in &self.crash {
            parts.push(format!("crash={}:{}", c.section, c.index));
        }
        parts.join(",")
    }

    /// Renders only the plan entries that change measured values —
    /// crash points are omitted (they never affect a result, see
    /// [`FaultPlan::has_effects`]), and a plan with no effects
    /// normalizes to `None`. Two runs whose `render_effects` agree must
    /// produce byte-identical results, which is exactly the contract
    /// the result journal and the deterministic manifest projection
    /// key on.
    #[must_use]
    pub fn render_effects(&self) -> Option<String> {
        if !self.has_effects() {
            return None;
        }
        let mut stripped = self.clone();
        stripped.crash.clear();
        Some(stripped.render())
    }
}

/// Gate called by sweep closures on sabotaged sections: panics for
/// `kill` points (exercising the runner's `catch_unwind`) and returns a
/// transient error for `flaky` points still inside their failing
/// window.
///
/// # Errors
///
/// Returns [`PitonError::Transient`] while a flaky point is failing.
///
/// # Panics
///
/// Panics for `kill` points, on every attempt.
pub fn sabotage_gate(
    plan: &FaultPlan,
    section: &str,
    index: usize,
    attempt: u32,
) -> Result<(), PitonError> {
    match plan.sabotage_for(section, index).map(|s| s.kind) {
        Some(SabotageKind::Kill) => {
            panic!("injected grid-point fault ({section}:{index})")
        }
        Some(SabotageKind::Flaky { failing_attempts }) if attempt < failing_attempts => Err(
            PitonError::transient(format!("injected flaky grid point ({section}:{index})")),
        ),
        _ => Ok(()),
    }
}

/// What one monitor read does under the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFault {
    /// The read fails; the channel must retry.
    Dropped,
    /// The ADC repeats its previous conversion.
    Stuck,
    /// The read returns an out-of-range value.
    Glitch,
}

/// The per-channel deterministic fault stream.
///
/// Seeded from the plan seed mixed with the channel's own seed, so
/// every channel of every independently-built system draws an
/// independent — but fully reproducible — sequence.
#[derive(Debug, Clone)]
pub struct FaultState {
    rng: StdRng,
    drop_rate: f64,
    stuck_rate: f64,
    glitch_rate: f64,
}

/// SplitMix64 finalizer: decorrelates the per-channel stream seed from
/// the plan seed.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultState {
    /// The fault stream of one channel under `plan`.
    #[must_use]
    pub fn for_channel(plan: &FaultPlan, channel_seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(mix(plan.seed, channel_seed)),
            drop_rate: plan.drop_rate,
            stuck_rate: plan.stuck_rate,
            glitch_rate: plan.glitch_rate,
        }
    }

    /// Rolls the fault outcome of one read attempt.
    pub fn roll(&mut self) -> Option<SampleFault> {
        let r: f64 = self.rng.gen_range(0.0..1.0);
        if r < self.drop_rate {
            Some(SampleFault::Dropped)
        } else if r < self.drop_rate + self.stuck_rate {
            Some(SampleFault::Stuck)
        } else if r < self.drop_rate + self.stuck_rate + self.glitch_rate {
            Some(SampleFault::Glitch)
        } else {
            None
        }
    }

    /// A glitched conversion of `truth`: several multiples off, in
    /// either direction — unambiguously outside the paper's ±1.5 mW
    /// noise band, so window outlier rejection can catch it.
    pub fn glitch_value(&mut self, truth: Watts) -> Watts {
        let scale: f64 = self.rng.gen_range(2.0..8.0);
        let sign = if self.rng.gen_range(0.0..1.0) < 0.5 {
            -1.0
        } else {
            1.0
        };
        Watts(truth.0 + sign * scale * truth.0.abs().max(0.05))
    }
}

/// A `Copy`-able handle to a registered [`FaultPlan`], so plan-carrying
/// configuration (e.g. `Fidelity`) can stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultToken(u32);

static REGISTRY: Mutex<Vec<FaultPlan>> = Mutex::new(Vec::new());

/// Registers a plan in the process-wide registry, returning its token.
/// The registry is append-only: tokens stay valid for the process
/// lifetime and registration order does not affect any fault stream.
#[must_use]
pub fn register(plan: FaultPlan) -> FaultToken {
    let mut reg = REGISTRY.lock().expect("fault registry lock");
    reg.push(plan);
    FaultToken(u32::try_from(reg.len() - 1).expect("registry fits in u32"))
}

/// Resolves a token back to its plan.
///
/// # Panics
///
/// Panics on a token from another process (registry miss).
#[must_use]
pub fn lookup(token: FaultToken) -> FaultPlan {
    REGISTRY.lock().expect("fault registry lock")[token.0 as usize].clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse(
            "seed=7,drop=0.1,stuck=0.05,glitch=0.02,brownout=40+8@0.9,kill=epi:3,flaky=noc:5@1",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert!((p.drop_rate - 0.1).abs() < 1e-12);
        let b = p.brownout.unwrap();
        assert_eq!((b.start_sample, b.samples), (40, 8));
        assert!(b.covers(40) && b.covers(47) && !b.covers(48) && !b.covers(39));
        assert_eq!(p.sabotage_for("epi", 3).unwrap().kind, SabotageKind::Kill);
        assert_eq!(
            p.sabotage_for("noc", 5).unwrap().kind,
            SabotageKind::Flaky {
                failing_attempts: 1
            }
        );
        assert!(p.sabotage_for("epi", 4).is_none());
    }

    #[test]
    fn parse_rejects_bad_entries() {
        for bad in [
            "drop=2.0",
            "nonsense=1",
            "drop",
            "brownout=40@0.9",
            "kill=epi",
            "seed=abc",
            "crash=epi",
            "crash=epi:x",
        ] {
            let e = FaultPlan::parse(bad).unwrap_err();
            assert!(matches!(e, PitonError::BadPlan { .. }), "{bad} gave {e:?}");
        }
    }

    #[test]
    fn parse_rejects_unknown_sections_naming_the_token() {
        for bad in ["kill=epy:3", "flaky=nock:5", "crash=scalin:0"] {
            let e = FaultPlan::parse(bad).unwrap_err();
            let msg = e.to_string();
            assert!(matches!(e, PitonError::BadPlan { .. }), "{bad} gave {e:?}");
            assert!(msg.contains(bad), "{msg:?} should name the token {bad:?}");
            assert!(msg.contains("unknown section"), "{msg:?}");
        }
        // All known sections are accepted by every grid-point key.
        for section in KNOWN_SECTIONS {
            for key in ["kill", "flaky", "crash"] {
                FaultPlan::parse(&format!("{key}={section}:0")).unwrap();
            }
        }
    }

    #[test]
    fn crash_points_round_trip_and_are_not_effects() {
        let p = FaultPlan::parse("crash=noc:7,crash=epi:0").unwrap();
        assert!(p.crash_for("noc", 7) && p.crash_for("epi", 0));
        assert!(!p.crash_for("noc", 8) && !p.crash_for("scaling", 7));
        assert_eq!(FaultPlan::parse(&p.render()).unwrap(), p);
        // Crash-only plans have no effects: byte-identical results.
        assert!(!p.has_effects());
        assert_eq!(p.render_effects(), None);
        // Mixed plans keep their effects but shed the crash entries.
        let mixed = FaultPlan::parse("seed=3,drop=0.1,kill=epi:2,crash=noc:1").unwrap();
        assert!(mixed.has_effects());
        let effects = mixed.render_effects().unwrap();
        assert_eq!(effects, "seed=3,drop=0.1,kill=epi:2");
        assert_eq!(
            FaultPlan::parse(&effects)
                .unwrap()
                .render_effects()
                .unwrap(),
            effects,
        );
    }

    #[test]
    fn empty_spec_is_a_no_fault_plan() {
        let p = FaultPlan::parse("").unwrap();
        assert!(!p.has_monitor_faults());
        assert!(p.brownout.is_none() && p.sabotage.is_empty());
    }

    #[test]
    fn fault_stream_is_deterministic_per_channel() {
        let plan = FaultPlan::with_seed(99);
        let mut a = FaultState::for_channel(&plan, 5);
        let mut b = FaultState::for_channel(&plan, 5);
        let mut c = FaultState::for_channel(&plan, 6);
        let sa: Vec<_> = (0..256).map(|_| a.roll()).collect();
        let sb: Vec<_> = (0..256).map(|_| b.roll()).collect();
        let sc: Vec<_> = (0..256).map(|_| c.roll()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc, "channels must draw independent streams");
        // Rates roughly honoured.
        let faults = sa.iter().filter(|f| f.is_some()).count();
        assert!((2..=45).contains(&faults), "{faults} faults in 256 rolls");
    }

    #[test]
    fn glitches_are_far_outside_the_noise_band() {
        let plan = FaultPlan::with_seed(1);
        let mut s = FaultState::for_channel(&plan, 0);
        for _ in 0..32 {
            let g = s.glitch_value(Watts(2.0));
            assert!((g.0 - 2.0).abs() > 1.0, "glitch {g} too plausible");
        }
    }

    #[test]
    fn sabotage_gate_flaky_then_recovers() {
        let mut plan = FaultPlan::with_seed(0);
        plan.sabotage.push(Sabotage {
            section: "epi".into(),
            index: 2,
            kind: SabotageKind::Flaky {
                failing_attempts: 2,
            },
        });
        assert!(sabotage_gate(&plan, "epi", 2, 0).is_err());
        assert!(sabotage_gate(&plan, "epi", 2, 1).is_err());
        assert!(sabotage_gate(&plan, "epi", 2, 2).is_ok());
        assert!(sabotage_gate(&plan, "epi", 3, 0).is_ok());
        assert!(sabotage_gate(&plan, "noc", 2, 0).is_ok());
    }

    #[test]
    #[should_panic(expected = "injected grid-point fault (epi:3)")]
    fn sabotage_gate_kill_panics() {
        let plan = FaultPlan::parse("kill=epi:3").unwrap();
        let _ = sabotage_gate(&plan, "epi", 3, 0);
    }

    #[test]
    fn registry_round_trips() {
        let plan = FaultPlan::with_seed(0xDEAD);
        let token = register(plan.clone());
        assert_eq!(lookup(token), plan);
    }
}
