//! The virtual Piton test bench: board, supplies, monitors, cooling and
//! the chip population.
//!
//! The paper's measurements come from a custom PCB designed for power
//! characterization (§III): bench supplies with remote voltage sense,
//! sense resistors on split power planes for each of the three chip
//! rails, I²C voltage/current monitors polled at ≈ 17 Hz, a heat-sink
//! and fan stack, and a drawer of packaged dies with varying process
//! corners and defects. This crate reproduces each piece:
//!
//! * [`fault`] — seeded deterministic bench-fault injection (dropped /
//!   stuck / glitched monitor reads, supply brownouts, sweep sabotage);
//! * [`supply`] — bench supplies and the rail set;
//! * [`monitor`] — sense-resistor channels, sampling noise, and the
//!   128-sample mean ± stddev measurement windows;
//! * [`population`] — process variation, defect classes and the
//!   Table IV yield campaign, plus the three named chips;
//! * [`system`] — [`system::PitonSystem`], the assembled Figure 3 setup
//!   every experiment drives.
//!
//! # Examples
//!
//! ```
//! use piton_board::population::ChipPopulation;
//!
//! let counts = ChipPopulation::piton_run().test_campaign(32);
//! assert_eq!(counts.good, 19); // Table IV
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod monitor;
pub mod population;
pub mod supply;
pub mod system;

pub use fault::{FaultPlan, FaultToken};
pub use monitor::{Measured, MeasurementWindow, Quality};
pub use population::{ChipPopulation, ChipStatus, Die, NamedChip, YieldCounts};
pub use system::{PitonSystem, RailMeasurement, WorkloadRun};
