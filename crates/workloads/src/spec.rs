//! SPECint 2006 surrogate workloads and the Sun Fire T2000 comparator
//! (§IV-I, Tables VIII and IX).
//!
//! The paper runs ten SPECint 2006 benchmarks (13 benchmark/input
//! pairs) on the Piton system and on a Sun Fire T2000 — an UltraSPARC
//! T1 machine with the *same core and L1 caches* but twice the clock,
//! twice the L2, 16× the memory and an 8× lower memory latency
//! (Table VIII). SPEC itself is proprietary and runs ~10¹¹
//! instructions, so this module substitutes **profile-driven synthetic
//! kernels**: each benchmark is characterized by its instruction mix and
//! cache-locality profile, a kernel realizing that profile runs on the
//! simulator to *measure* Piton's CPI and power, and an analytic
//! UltraSPARC T1 model prices the same profile on the T2000. Execution
//! times are then extrapolated from the paper's T2000 minutes — an
//! independent anchor — so the Table IX slowdowns *emerge* from the
//! modelled clock ratio, memory-latency gap and cache-capacity gap
//! rather than being copied in. (See DESIGN.md for this substitution.)

use piton_arch::isa::{Opcode, Reg};
use piton_sim::program::Program;
use serde::{Deserialize, Serialize};

use crate::asm::Assembler;

/// Instruction-mix and locality profile of one benchmark, as counts per
/// 100 dynamic instructions, plus system-level activity rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecProfile {
    /// 1-cycle integer ALU instructions per 100.
    pub int_pct: f64,
    /// Integer multiplies per 100.
    pub mul_pct: f64,
    /// Branches per 100.
    pub branch_pct: f64,
    /// Loads that hit the L1 per 100.
    pub l1_load_pct: f64,
    /// Loads that miss the L1 but hit the L2 per 100.
    pub l2_load_pct: f64,
    /// Loads that miss the whole cache hierarchy per 100.
    pub mem_load_pct: f64,
    /// Stores per 100.
    pub store_pct: f64,
    /// I/O transactions per 1 000 instructions (SD card / serial
    /// filesystem traffic; drives VIO and bridge power).
    pub io_per_kinstr: f64,
    /// Extra Piton CPI from system effects the ISA-level simulator does
    /// not execute — software TLB reloads, paging against 1 GB of
    /// memory, kernel time at 500 MHz. Fitted per benchmark to
    /// Table IX (see DESIGN.md); the *structural* slowdown from clock
    /// and memory latency is measured, not fitted.
    pub os_stall_cpi: f64,
}

impl SpecProfile {
    /// Sum of all instruction classes (should be 100).
    #[must_use]
    pub fn total_pct(&self) -> f64 {
        self.int_pct
            + self.mul_pct
            + self.branch_pct
            + self.l1_load_pct
            + self.l2_load_pct
            + self.mem_load_pct
            + self.store_pct
    }
}

/// One Table IX row: a benchmark/input pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecBenchmark {
    /// Benchmark/input label as printed in Table IX.
    pub name: &'static str,
    /// UltraSPARC T1 execution time in minutes (the paper's measured
    /// anchor).
    pub t2000_minutes: f64,
    /// Locality/mix profile.
    pub profile: SpecProfile,
}

/// The 13 benchmark/input pairs of Table IX with profiles fitted to the
/// published slowdowns (memory-bound pairs like omnetpp and xalancbmk
/// carry high miss traffic; cache-friendly pairs like h264ref and hmmer
/// carry high L1 locality; hmmer and libquantum add heavy I/O).
#[must_use]
pub fn table_ix_benchmarks() -> Vec<SpecBenchmark> {
    let mk = |name,
              t2000_minutes,
              int_pct,
              mul_pct,
              branch_pct,
              l1_load_pct,
              l2_load_pct,
              mem_load_pct,
              store_pct,
              io_per_kinstr,
              os_stall_cpi| SpecBenchmark {
        name,
        t2000_minutes,
        profile: SpecProfile {
            int_pct,
            mul_pct,
            branch_pct,
            l1_load_pct,
            l2_load_pct,
            mem_load_pct,
            store_pct,
            io_per_kinstr,
            os_stall_cpi,
        },
    };
    vec![
        //  name                 t2000min  int    mul  br    l1    l2   mem    st    io    os
        mk(
            "bzip2-chicken",
            11.74,
            51.60,
            1.0,
            12.0,
            22.0,
            5.0,
            0.40,
            8.0,
            0.2,
            1.86,
        ),
        mk(
            "bzip2-source",
            23.62,
            50.00,
            1.0,
            12.0,
            22.0,
            5.5,
            0.50,
            9.0,
            0.2,
            2.57,
        ),
        mk(
            "gcc-166", 5.72, 45.95, 0.5, 14.0, 23.0, 7.0, 0.55, 9.0, 0.5, 4.97,
        ),
        mk(
            "gcc-200", 9.21, 44.80, 0.5, 14.0, 23.0, 7.0, 0.70, 10.0, 0.5, 6.46,
        ),
        mk(
            "gobmk-13x13",
            16.67,
            54.15,
            1.5,
            14.0,
            20.0,
            3.5,
            0.35,
            6.5,
            0.1,
            1.58,
        ),
        mk(
            "h264ref-foreman-baseline",
            22.76,
            57.90,
            3.0,
            8.0,
            22.0,
            2.0,
            0.10,
            7.0,
            0.1,
            0.39,
        ),
        mk(
            "hmmer-nph3",
            48.38,
            50.38,
            2.0,
            7.0,
            30.0,
            2.5,
            0.12,
            8.0,
            35.0,
            0.69,
        ),
        mk(
            "libquantum",
            201.61,
            48.50,
            1.0,
            10.0,
            25.0,
            5.0,
            0.50,
            10.0,
            20.0,
            3.10,
        ),
        mk(
            "omnetpp", 72.94, 41.10, 0.5, 13.0, 24.0, 9.0, 1.40, 11.0, 0.3, 11.38,
        ),
        mk(
            "perlbench-checkspam",
            11.57,
            42.50,
            0.5,
            14.0,
            24.0,
            8.0,
            1.00,
            10.0,
            0.4,
            7.09,
        ),
        mk(
            "perlbench-diffmail",
            23.13,
            42.50,
            0.5,
            14.0,
            24.0,
            8.0,
            1.00,
            10.0,
            0.4,
            7.03,
        ),
        mk(
            "sjeng", 122.07, 54.05, 1.0, 15.0, 19.0, 3.6, 0.35, 7.0, 0.1, 1.56,
        ),
        mk(
            "xalancbmk",
            102.99,
            42.50,
            0.5,
            14.0,
            25.0,
            7.5,
            0.90,
            9.6,
            0.3,
            5.28,
        ),
    ]
}

/// Memory regions used by the synthetic kernels.
pub mod regions {
    /// L1-resident load target.
    pub const HOT: u64 = 0x600_0000;
    /// Region walked for L1-miss/L2-hit loads: 16 KB touched at 16 B
    /// stride, so the 1 024 distinct L1 lines overflow the 8 KB
    /// L1/L1.5 while the 256 underlying 64 B lines sit comfortably in
    /// the L2 (and warm in ~0.1 M cycles). Power-of-two for cheap
    /// wraparound.
    pub const L2_REGION_BASE: u64 = 0x800_0000;
    /// L2-region size mask (16 KB).
    pub const L2_REGION_MASK: u64 = 0x3FFF;
    /// Region walked for full-miss loads: 4 MB (overflows the aggregate
    /// L2).
    pub const MEM_REGION_BASE: u64 = 0x1000_0000;
    /// Memory-region size mask (4 MB).
    pub const MEM_REGION_MASK: u64 = 0x3F_FFFF;
    /// Private store target.
    pub const STORE: u64 = 0x700_0000;
}

const ONE: Reg = Reg::new(2);
const PAT_A: Reg = Reg::new(10);
const PAT_B: Reg = Reg::new(11);
const SCRATCH: Reg = Reg::new(12);
const HOT_ADDR: Reg = Reg::new(13);
const STORE_ADDR: Reg = Reg::new(14);
const L2_OFF: Reg = Reg::new(15);
const L2_BASE: Reg = Reg::new(16);
const L2_MASK: Reg = Reg::new(17);
const MEM_OFF: Reg = Reg::new(18);
const MEM_BASE: Reg = Reg::new(19);
const MEM_MASK: Reg = Reg::new(20);
const STRIDE: Reg = Reg::new(21);
const WALK: Reg = Reg::new(22);
const STRIDE16: Reg = Reg::new(23);

/// Builds the synthetic kernel realizing a profile: an infinite loop of
/// ~100 instructions whose class counts match the profile (fractions
/// are rounded; misses are produced by strided walks through regions
/// sized against the real cache hierarchy).
#[must_use]
pub fn spec_kernel(profile: &SpecProfile) -> Program {
    let mut asm = Assembler::new();
    asm.movi(ONE, 1);
    asm.movi(PAT_A, 0x0123_4567_89AB_CDEF);
    asm.movi(PAT_B, 0x0F0F_0F0F_F0F0_F0F0_u64 as i64);
    asm.movi(HOT_ADDR, regions::HOT as i64);
    asm.movi(STORE_ADDR, regions::STORE as i64);
    asm.movi(L2_BASE, regions::L2_REGION_BASE as i64);
    asm.movi(L2_MASK, regions::L2_REGION_MASK as i64);
    asm.movi(MEM_BASE, regions::MEM_REGION_BASE as i64);
    asm.movi(MEM_MASK, regions::MEM_REGION_MASK as i64);
    asm.movi(STRIDE, 64);
    asm.movi(STRIDE16, 16);
    asm.movi(L2_OFF, 0);
    asm.movi(MEM_OFF, 0);
    asm.data_word(regions::HOT, 0xDEAD_BEEF_CAFE_F00D_u64);
    // Warm the hot line and take store ownership.
    asm.ldx(SCRATCH, HOT_ADDR, 0);
    asm.stx(PAT_A, STORE_ADDR, 0);
    asm.membar();
    // Warm the L2 region (one pass at line granularity) so the measured
    // loop sees its steady-state hit behaviour, not the cold transient.
    asm.movi(WALK, regions::L2_REGION_BASE as i64);
    asm.movi(SCRATCH, ((regions::L2_REGION_MASK + 1) / 64) as i64);
    asm.label("warm_l2");
    asm.ldx(Reg::G0, WALK, 0);
    asm.alu(Opcode::Add, WALK, WALK, STRIDE);
    asm.alu(Opcode::Sub, SCRATCH, SCRATCH, ONE);
    asm.branch_to(Opcode::Bne, SCRATCH, Reg::G0, "warm_l2");

    // Realize the mix at per-1000 granularity so fractional miss
    // rates survive rounding, and interleave the classes across slices
    // so stores never burst past the 8-entry store buffer.
    let n = |pct: f64| (pct * 10.0).round().max(0.0) as usize;
    let n_int = n(profile.int_pct);
    let n_mul = n(profile.mul_pct);
    let n_branch = n(profile.branch_pct).saturating_sub(1); // loop branch
    let n_l1 = n(profile.l1_load_pct);
    let n_l2 = n(profile.l2_load_pct);
    let n_mem = n(profile.mem_load_pct);
    let n_store = n(profile.store_pct);
    // Address-generation adds below consume part of the integer budget.
    let addr_gen = 3 * n_mem + 3 * n_l2;
    let n_int_rem = n_int.saturating_sub(addr_gen);

    const SLICES: usize = 25;
    let share = |count: usize, slice: usize| count * (slice + 1) / SLICES - count * slice / SLICES;

    asm.label("loop");
    for slice in 0..SLICES {
        for _ in 0..share(n_mem, slice) {
            asm.alu(Opcode::And, WALK, MEM_OFF, MEM_MASK);
            asm.alu(Opcode::Add, WALK, WALK, MEM_BASE);
            asm.ldx(SCRATCH, WALK, 0);
            asm.alu(Opcode::Add, MEM_OFF, MEM_OFF, STRIDE);
        }
        for _ in 0..share(n_l2, slice) {
            asm.alu(Opcode::And, WALK, L2_OFF, L2_MASK);
            asm.alu(Opcode::Add, WALK, WALK, L2_BASE);
            asm.ldx(SCRATCH, WALK, 0);
            asm.alu(Opcode::Add, L2_OFF, L2_OFF, STRIDE16);
        }
        for _ in 0..share(n_l1, slice) {
            asm.ldx(SCRATCH, HOT_ADDR, 0);
        }
        for k in 0..share(n_store, slice) {
            asm.stx(PAT_B, STORE_ADDR, (k as i64 % 2) * 8);
        }
        for _ in 0..share(n_mul, slice) {
            asm.alu(Opcode::Mulx, SCRATCH, PAT_A, PAT_B);
        }
        for k in 0..share(n_int_rem, slice) {
            let op = if k % 2 == 0 { Opcode::Add } else { Opcode::And };
            asm.alu(op, SCRATCH, PAT_A, PAT_B);
        }
        for _ in 0..share(n_branch, slice) {
            let next = asm.here() + 1;
            asm.emit(piton_arch::isa::Instruction::branch(
                Opcode::Beq,
                PAT_A,
                PAT_A,
                next,
            ));
        }
    }
    asm.jump("loop");
    asm.assemble()
}

/// Analytic UltraSPARC T1 / Sun Fire T2000 performance model
/// (Table VIII column 1): same core and L1s as Piton, 1 GHz clock,
/// 3 MB L2 at 20–24 ns, 108 ns average memory latency, 64-bit DDR2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct T2000Model {
    /// Core clock in MHz.
    pub freq_mhz: f64,
    /// L2 hit latency in core cycles (~22 ns at 1 GHz).
    pub l2_hit_cycles: f64,
    /// Memory latency in core cycles (108 ns at 1 GHz).
    pub mem_cycles: f64,
    /// Fraction of Piton's L2-missing loads that *hit* the T2000's
    /// larger (3 MB vs 1.6 MB) L2.
    pub extra_l2_capture: f64,
}

impl T2000Model {
    /// The Table VIII Sun Fire T2000.
    #[must_use]
    pub fn sun_fire_t2000() -> Self {
        Self {
            freq_mhz: 1_000.0,
            l2_hit_cycles: 22.0,
            mem_cycles: 108.0,
            extra_l2_capture: 0.45,
        }
    }

    /// Cycles per instruction for a profile on the T2000.
    #[must_use]
    pub fn cpi(&self, p: &SpecProfile) -> f64 {
        let mem = p.mem_load_pct * (1.0 - self.extra_l2_capture);
        let l2 = p.l2_load_pct + p.mem_load_pct * self.extra_l2_capture;
        (p.int_pct
            + 9.0 * p.mul_pct
            + 3.0 * p.branch_pct
            + 3.0 * p.l1_load_pct
            + self.l2_hit_cycles * l2
            + self.mem_cycles * mem
            + 1.0 * p.store_pct)
            / 100.0
    }
}

impl Default for T2000Model {
    fn default() -> Self {
        Self::sun_fire_t2000()
    }
}

/// One row of the Table VIII system comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemSpecRow {
    /// Parameter name.
    pub parameter: &'static str,
    /// Sun Fire T2000 value.
    pub t2000: &'static str,
    /// Piton system value.
    pub piton: &'static str,
}

/// The Table VIII system specifications.
#[must_use]
pub fn table_viii() -> Vec<SystemSpecRow> {
    let row = |parameter, t2000, piton| SystemSpecRow {
        parameter,
        t2000,
        piton,
    };
    vec![
        row("Operating System", "Debian Sid Linux", "Debian Sid Linux"),
        row("Kernel Version", "4.8", "4.9"),
        row("Memory Device Type", "DDR2-533", "DDR3-1866"),
        row(
            "Rated Memory Clock Frequency",
            "266.67MHz (533MT/s)",
            "933MHz (1866MT/s)",
        ),
        row(
            "Actual Memory Clock Frequency",
            "266.67MHz (533MT/s)",
            "800MHz (1600MT/s)",
        ),
        row("Rated Memory Timings (cycles)", "4-4-4", "13-13-13"),
        row("Rated Memory Timings (ns)", "15-15-15", "13.91-13.91-13.91"),
        row("Actual Memory Timings (cycles)", "4-4-4", "12-12-12"),
        row("Actual Memory Timings (ns)", "15-15-15", "15-15-15"),
        row("Memory Data Width", "64bits + 8bits ECC", "32bits"),
        row("Memory Size", "16GB", "1GB"),
        row("Memory Access Latency (Average)", "108ns", "848ns"),
        row("Persistent Storage Type", "HDD", "SD Card"),
        row("Processor", "UltraSPARC T1", "Piton"),
        row("Processor Frequency", "1Ghz", "500.05MHz"),
        row("Processor Cores", "8", "25"),
        row("Processor Thread Per Core", "4", "2"),
        row("Processor L2 Cache Size", "3MB", "1.6MB aggregate"),
        row("Processor L2 Cache Access Latency", "20-24ns", "68-108ns"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use piton_arch::config::ChipConfig;
    use piton_arch::topology::TileId;
    use piton_sim::machine::Machine;

    #[test]
    fn profiles_sum_to_one_hundred() {
        for b in table_ix_benchmarks() {
            let total = b.profile.total_pct();
            assert!(
                (total - 100.0).abs() < 0.5,
                "{}: mix sums to {total}",
                b.name
            );
        }
    }

    #[test]
    fn thirteen_benchmark_pairs() {
        assert_eq!(table_ix_benchmarks().len(), 13);
    }

    #[test]
    fn t2000_cpi_rises_with_memory_traffic() {
        let t = T2000Model::sun_fire_t2000();
        let benches = table_ix_benchmarks();
        let omnetpp = benches.iter().find(|b| b.name == "omnetpp").unwrap();
        let h264 = benches
            .iter()
            .find(|b| b.name == "h264ref-foreman-baseline")
            .unwrap();
        assert!(t.cpi(&omnetpp.profile) > t.cpi(&h264.profile));
    }

    fn measure_cpi(profile: &SpecProfile, cycles: u64) -> f64 {
        let mut m = Machine::new(&ChipConfig::piton());
        m.load_thread(TileId::new(0), 0, spec_kernel(profile));
        // Warm up past the cold-miss transient (the kernel's preamble
        // walks the L2 region once, ~0.12 M cycles).
        m.run(200_000);
        let before = m.counters().clone();
        let retired_before = m.retired();
        m.run(cycles);
        let delta = m.counters().delta_since(&before);
        delta.cycles as f64 / (m.retired() - retired_before) as f64
    }

    #[test]
    fn memory_bound_kernel_has_much_higher_cpi() {
        let benches = table_ix_benchmarks();
        let omnetpp = &benches
            .iter()
            .find(|b| b.name == "omnetpp")
            .unwrap()
            .profile;
        let h264 = &benches
            .iter()
            .find(|b| b.name == "h264ref-foreman-baseline")
            .unwrap()
            .profile;
        let cpi_mem = measure_cpi(omnetpp, 400_000);
        let cpi_cpu = measure_cpi(h264, 200_000);
        assert!(
            cpi_mem > 2.0 * cpi_cpu,
            "omnetpp {cpi_mem} vs h264 {cpi_cpu}"
        );
        assert!(cpi_cpu > 1.0 && cpi_cpu < 4.0, "h264 CPI {cpi_cpu}");
    }

    #[test]
    fn kernel_miss_rates_track_profile() {
        let benches = table_ix_benchmarks();
        let omnetpp = &benches
            .iter()
            .find(|b| b.name == "omnetpp")
            .unwrap()
            .profile;
        let mut m = Machine::new(&ChipConfig::piton());
        m.load_thread(TileId::new(0), 0, spec_kernel(omnetpp));
        m.run(200_000);
        let before = m.counters().clone();
        let r0 = m.retired();
        m.run(600_000);
        let d = m.counters().delta_since(&before);
        let instr = (m.retired() - r0) as f64;
        let miss_pct = 100.0 * d.l2_misses as f64 / instr;
        // Profile says 1.4 mem loads per 100 instructions.
        assert!(
            (0.8..=2.2).contains(&miss_pct),
            "measured mem-load rate {miss_pct}%"
        );
    }

    #[test]
    fn table_viii_matches_paper_anchors() {
        let rows = table_viii();
        assert_eq!(rows.len(), 19);
        let find = |p: &str| rows.iter().find(|r| r.parameter == p).unwrap();
        assert_eq!(find("Memory Access Latency (Average)").piton, "848ns");
        assert_eq!(find("Processor Frequency").t2000, "1Ghz");
        assert_eq!(find("Processor L2 Cache Size").piton, "1.6MB aggregate");
    }

    #[test]
    fn slowdown_model_lands_in_the_paper_band() {
        // 2 x CPI ratio must put every pair in the paper's 3-10x band
        // (analytic check; the full measured check lives in the
        // Table IX experiment).
        let t = T2000Model::sun_fire_t2000();
        for b in table_ix_benchmarks() {
            let cpi_t = t.cpi(&b.profile);
            // Quick Piton-side analytic estimate (sim refines this).
            let p = &b.profile;
            let cpi_p = (p.int_pct
                + 11.0 * p.mul_pct
                + 3.0 * p.branch_pct
                + 3.0 * p.l1_load_pct
                + 43.0 * p.l2_load_pct
                + 430.0 * p.mem_load_pct
                + 2.0 * p.store_pct)
                / 100.0
                + p.os_stall_cpi;
            let slowdown = 2.0 * cpi_p / cpi_t;
            assert!(
                (2.2..=12.5).contains(&slowdown),
                "{}: analytic slowdown {slowdown}",
                b.name
            );
        }
    }
}
