//! Workloads of the HPCA'18 Piton characterization study.
//!
//! Everything the paper runs on the chip is built here, from the
//! hand-written assembly tests up to application surrogates:
//!
//! * [`asm`] — the label-resolving assembler the tests are written in;
//! * [`epi`] — the §IV-E energy-per-instruction tests (unrolled ×20
//!   loops, min/random/max operands, the nine-`nop` store-drain trick);
//! * [`memwalk`] — the §IV-F cache alias walkers for each Table VII
//!   hit/miss scenario;
//! * [`micro`] — the §IV-H microbenchmarks (Int, HP, Hist) and the
//!   1 T/C / 2 T/C thread mappings;
//! * [`spec`] — SPECint 2006 surrogate profiles, synthetic kernels and
//!   the Sun Fire T2000 comparator of §IV-I;
//! * [`thermal_app`] — the §IV-J two-phase application with
//!   synchronized and interleaved schedules.
//!
//! # Examples
//!
//! ```
//! use piton_workloads::epi::{epi_test, EpiCase};
//! use piton_arch::isa::{Opcode, OperandPattern};
//!
//! let program = epi_test(EpiCase::Plain(Opcode::Add), OperandPattern::Random, 0);
//! assert!(program.fits_in(16 * 1024)); // fits the L1I, per §IV-E
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod epi;
pub mod memwalk;
pub mod micro;
pub mod spec;
pub mod thermal_app;

pub use asm::Assembler;
pub use epi::EpiCase;
pub use memwalk::MemScenario;
pub use micro::{Microbenchmark, RunLength, ThreadsPerCore};
pub use spec::{SpecBenchmark, T2000Model};
pub use thermal_app::Schedule;
