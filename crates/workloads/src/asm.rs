//! A small embedded assembler for building test programs.
//!
//! The paper's EPI and memory-system studies are driven by hand-written
//! assembly tests (unrolled loops, carefully placed `nop`s); this module
//! provides the label-resolving builder those tests are written with.
//!
//! # Examples
//!
//! ```
//! use piton_workloads::asm::Assembler;
//! use piton_arch::isa::{Opcode, Reg};
//!
//! let mut a = Assembler::new();
//! a.movi(Reg::new(1), 3);
//! a.label("loop");
//! a.alu(Opcode::Sub, Reg::new(1), Reg::new(1), Reg::new(2));
//! a.branch_to(Opcode::Bne, Reg::new(1), Reg::G0, "loop");
//! a.halt();
//! let program = a.assemble();
//! assert_eq!(program.len(), 4);
//! ```

use std::collections::HashMap;

use piton_arch::isa::{Instruction, Opcode, Reg};
use piton_sim::program::Program;

/// A label-resolving program builder.
#[derive(Debug, Default, Clone)]
pub struct Assembler {
    instructions: Vec<Instruction>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
    data: Vec<(u64, u64)>,
}

impl Assembler {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction index (where the next instruction lands).
    #[must_use]
    pub fn here(&self) -> usize {
        self.instructions.len()
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_owned(), self.here());
        assert!(prev.is_none(), "label `{name}` defined twice");
        self
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instruction) -> &mut Self {
        self.instructions.push(i);
        self
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instruction::nop())
    }

    /// Emits `count` `nop`s.
    pub fn nops(&mut self, count: usize) -> &mut Self {
        for _ in 0..count {
            self.nop();
        }
        self
    }

    /// Emits a three-register ALU/FP operation.
    pub fn alu(&mut self, op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instruction::alu(op, rd, rs1, rs2))
    }

    /// Emits `movi rd, value`.
    pub fn movi(&mut self, rd: Reg, value: i64) -> &mut Self {
        self.emit(Instruction::movi(rd, value))
    }

    /// Emits `ldx rd, [base + offset]`.
    pub fn ldx(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::ldx(rd, base, offset))
    }

    /// Emits `stx src, [base + offset]`.
    pub fn stx(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::stx(src, base, offset))
    }

    /// Emits `casx [addr], expected, rd`.
    pub fn casx(&mut self, rd: Reg, addr: Reg, expected: Reg) -> &mut Self {
        self.emit(Instruction::casx(rd, addr, expected))
    }

    /// Emits `membar`.
    pub fn membar(&mut self) -> &mut Self {
        self.emit(Instruction::membar())
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instruction::halt())
    }

    /// Emits a branch to a label (forward references allowed).
    pub fn branch_to(&mut self, op: Opcode, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        let at = self.here();
        self.fixups.push((at, label.to_owned()));
        self.emit(Instruction::branch(op, rs1, rs2, usize::MAX))
    }

    /// Emits an unconditional jump to a label (`beq %g0, %g0, label`).
    pub fn jump(&mut self, label: &str) -> &mut Self {
        self.branch_to(Opcode::Beq, Reg::G0, Reg::G0, label)
    }

    /// Adds a word to the initial data image.
    pub fn data_word(&mut self, addr: u64, value: u64) -> &mut Self {
        self.data.push((addr, value));
        self
    }

    /// Resolves labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics on a branch to an undefined label.
    #[must_use]
    pub fn assemble(&self) -> Program {
        let mut instructions = self.instructions.clone();
        for (at, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .unwrap_or_else(|| panic!("undefined label `{label}`"));
            instructions[*at].imm = target as i64;
        }
        Program {
            instructions,
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piton_arch::config::ChipConfig;
    use piton_arch::topology::TileId;
    use piton_sim::machine::Machine;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        a.movi(Reg::new(1), 2);
        a.movi(Reg::new(2), 1);
        a.label("loop");
        a.alu(Opcode::Sub, Reg::new(1), Reg::new(1), Reg::new(2));
        a.branch_to(Opcode::Beq, Reg::new(1), Reg::G0, "done"); // forward
        a.jump("loop"); // backward
        a.label("done");
        a.halt();
        let p = a.assemble();

        let mut m = Machine::new(&ChipConfig::piton());
        m.load_thread(TileId::new(0), 0, p);
        assert!(m.run_until_halted(10_000));
        assert_eq!(m.core(TileId::new(0)).reg(0, Reg::new(1)), 0);
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Assembler::new();
        a.jump("nowhere");
        let _ = a.assemble();
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new();
        a.label("x");
        a.nop();
        a.label("x");
    }

    #[test]
    fn data_words_attach_to_program() {
        let mut a = Assembler::new();
        a.data_word(0x1000, 42).nop().halt();
        let p = a.assemble();
        assert_eq!(p.data, vec![(0x1000, 42)]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn nops_emits_count() {
        let mut a = Assembler::new();
        a.nops(9).halt();
        assert_eq!(a.assemble().len(), 10);
    }
}
