//! Cache alias walkers — the memory-system energy tests of §IV-F.
//!
//! Each scenario of Table VII is an unrolled infinite loop of `ldx`
//! whose consecutive loads alias to the same cache set at the level that
//! must miss, while the line-to-L2-slice mapping (set to high-order
//! address bits, as the paper configures through software) pins the home
//! slice so local-versus-remote distance is controlled:
//!
//! | scenario | construction |
//! |---|---|
//! | L1 hit | one address, loaded repeatedly |
//! | L1 miss, L2 hit | ≥ 5 addresses 2 KB apart (same L1/L1.5 set, 4 ways) within one slice's 1 MB region |
//! | L1 miss, L2 miss | ≥ 5 addresses 16 KB apart (same L2 set, 4 ways) within one region |
//!
//! The home tile is selected by the high megabyte bits; the running tile
//! is always tile0, so homing at tile0/tile4/tile24 produces the
//! local / 4-hop / 8-hop rows.

use piton_arch::config::CacheConfig;
use piton_arch::isa::Reg;
use piton_sim::program::Program;

use crate::asm::Assembler;

/// The Table VII access scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemScenario {
    /// All loads hit the L1.
    L1Hit,
    /// Loads miss the L1/L1.5 and hit the home L2 slice of `home_tile`.
    L2Hit {
        /// Tile whose slice homes the data.
        home_tile: usize,
    },
    /// Loads miss everywhere (L2 set thrash) at the local slice.
    L2Miss,
}

impl MemScenario {
    /// The five Table VII rows (running tile is tile0).
    #[must_use]
    pub fn table_vii() -> Vec<(MemScenario, &'static str)> {
        vec![
            (MemScenario::L1Hit, "L1 Hit"),
            (MemScenario::L2Hit { home_tile: 0 }, "L1 Miss, Local L2 Hit"),
            (
                MemScenario::L2Hit { home_tile: 4 },
                "L1 Miss, Remote L2 Hit (4 hops)",
            ),
            (
                MemScenario::L2Hit { home_tile: 24 },
                "L1 Miss, Remote L2 Hit (8 hops)",
            ),
            (MemScenario::L2Miss, "L1 Miss, Local L2 Miss"),
        ]
    }
}

/// Base address of the 1 MB region homed at `tile` under the high-bit
/// slice mapping (`(addr >> 20) % 25`).
#[must_use]
pub fn region_base(tile: usize) -> u64 {
    assert!(tile < 25, "tile out of range");
    (tile as u64) << 20
}

/// The load addresses of one scenario.
#[must_use]
pub fn scenario_addresses(scenario: MemScenario, l1d: CacheConfig, l2: CacheConfig) -> Vec<u64> {
    match scenario {
        MemScenario::L1Hit => vec![region_base(0) + 0x40],
        MemScenario::L2Hit { home_tile } => {
            // Stride = one L1 way (sets × line): 2 KB for the 8 KB/4-way
            // L1D; > associativity distinct lines thrash L1 and L1.5
            // (identical geometry) while all fit in the 64 KB L2.
            let stride = l1d.sets() * l1d.line_bytes;
            let base = region_base(home_tile) + 0x40;
            (0..(l1d.associativity + 2))
                .map(|k| base + k * stride)
                .collect()
        }
        MemScenario::L2Miss => {
            // Stride = one L2 way (16 KB): same L2 set, > associativity
            // lines; every access misses to memory. (Also a multiple of
            // the L1 way stride, so the L1 thrashes too.)
            let stride = l2.sets() * l2.line_bytes;
            let base = region_base(0) + 0x40;
            (0..(l2.associativity + 2))
                .map(|k| base + k * stride)
                .collect()
        }
    }
}

/// Builds the unrolled `ldx` walker over the scenario's addresses.
///
/// Addresses are preloaded into registers so the measured loop contains
/// only `ldx` and the loop branch. Every word carries a random-looking
/// value (the paper's memory-energy results "are based on random data").
#[must_use]
pub fn ldx_walker(addresses: &[u64]) -> Program {
    assert!(
        !addresses.is_empty() && addresses.len() <= 20,
        "1..=20 addresses"
    );
    let mut asm = Assembler::new();
    // Registers r8.. hold the addresses.
    for (i, &addr) in addresses.iter().enumerate() {
        let r = Reg::new(8 + i as u8);
        asm.movi(r, addr as i64);
        asm.data_word(addr, addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    }
    asm.label("loop");
    // Unroll to ~20 loads per iteration, cycling through the addresses.
    // The unrolled count is a multiple of the address count so the
    // cyclic access pattern continues seamlessly across the loop
    // branch; otherwise the wrap re-touches a recently-used address
    // within the associativity window and produces spurious L1 hits.
    let reps = (crate::epi::UNROLL / addresses.len()).max(1) * addresses.len();
    for k in 0..reps {
        let r = Reg::new(8 + (k % addresses.len()) as u8);
        asm.ldx(Reg::new(1), r, 0);
    }
    asm.jump("loop");
    asm.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use piton_arch::config::{ChipConfig, SliceMapping};
    use piton_arch::topology::TileId;
    use piton_sim::machine::Machine;
    use piton_sim::memsys::{HitLevel, MemorySystem};

    fn high_mapped_config() -> ChipConfig {
        let mut cfg = ChipConfig::piton();
        cfg.slice_mapping = SliceMapping::High;
        cfg
    }

    #[test]
    fn regions_home_where_claimed() {
        let sys = MemorySystem::new(&high_mapped_config());
        for tile in [0usize, 4, 24] {
            let base = region_base(tile) + 0x40;
            assert_eq!(sys.home_slice(base).index(), tile, "tile {tile}");
        }
    }

    #[test]
    fn l2hit_addresses_alias_one_l1_set_but_distinct_l2_sets() {
        let cfg = high_mapped_config();
        let addrs = scenario_addresses(MemScenario::L2Hit { home_tile: 0 }, cfg.l1d, cfg.l2);
        assert_eq!(addrs.len(), 6);
        let l1 = piton_sim::cache::SetAssocCache::new(cfg.l1d);
        let l2 = piton_sim::cache::SetAssocCache::new(cfg.l2);
        let s0 = l1.set_index(addrs[0]);
        for &a in &addrs {
            assert_eq!(l1.set_index(a), s0, "L1 sets must alias");
        }
        let distinct: std::collections::HashSet<u64> =
            addrs.iter().map(|&a| l2.set_index(a)).collect();
        assert!(distinct.len() > 1, "L2 sets must not all alias");
    }

    #[test]
    fn l2miss_addresses_alias_one_l2_set() {
        let cfg = high_mapped_config();
        let addrs = scenario_addresses(MemScenario::L2Miss, cfg.l1d, cfg.l2);
        let l2 = piton_sim::cache::SetAssocCache::new(cfg.l2);
        let s0 = l2.set_index(addrs[0]);
        for &a in &addrs {
            assert_eq!(l2.set_index(a), s0);
        }
        // All in tile0's region.
        let sys = MemorySystem::new(&cfg);
        for &a in &addrs {
            assert_eq!(sys.home_slice(a).index(), 0);
        }
    }

    fn run_scenario(
        scenario: MemScenario,
        cycles: u64,
    ) -> (piton_sim::events::ActivityCounters, u64) {
        let cfg = high_mapped_config();
        let addrs = scenario_addresses(scenario, cfg.l1d, cfg.l2);
        let mut m = Machine::new(&cfg);
        m.load_thread(TileId::new(0), 0, ldx_walker(&addrs));
        m.run(cycles);
        let loads = m.counters().issues[piton_arch::isa::Opcode::Ldx.index()];
        (m.counters().clone(), loads)
    }

    #[test]
    fn l1hit_scenario_hits_after_warmup() {
        let (act, loads) = run_scenario(MemScenario::L1Hit, 20_000);
        assert!(loads > 4_000);
        assert!(act.l1d_misses <= 2);
    }

    #[test]
    fn l2hit_scenario_misses_l1_every_time_but_not_l2() {
        let (act, loads) = run_scenario(MemScenario::L2Hit { home_tile: 0 }, 40_000);
        assert!(loads > 500);
        // Steady state: every load misses L1 (alias thrash)...
        assert!(
            act.l1d_misses > loads - 20,
            "l1 misses {} of {loads}",
            act.l1d_misses
        );
        // ...but only the 6 cold misses leave the chip.
        assert!(act.l2_misses <= 6, "l2 misses {}", act.l2_misses);
    }

    #[test]
    fn l2miss_scenario_leaves_the_chip_every_time() {
        let (act, loads) = run_scenario(MemScenario::L2Miss, 400_000);
        assert!(loads > 200);
        assert!(
            act.l2_misses > loads - 10,
            "l2 misses {} of {loads}",
            act.l2_misses
        );
        assert_eq!(act.dram_accesses, 2 * act.offchip_requests);
    }

    #[test]
    fn remote_scenario_reports_hop_latency() {
        // Direct memory-system check: a warm remote L2 hit from tile0 to
        // tile24's slice costs 52 cycles (Table VII).
        let cfg = high_mapped_config();
        let mut sys = MemorySystem::new(&cfg);
        let mut act = piton_sim::events::ActivityCounters::default();
        let addr = region_base(24) + 0x40;
        let _ = sys.load(TileId::new(24), addr, 0, &mut act); // warm L2
        let out = sys.load(TileId::new(0), addr, 5_000, &mut act);
        assert_eq!(out.level, HitLevel::L2 { hops: 8 });
        assert_eq!(out.latency, 52);
    }

    #[test]
    #[should_panic(expected = "1..=20 addresses")]
    fn too_many_addresses_panics() {
        let addrs: Vec<u64> = (0..30).map(|k| 0x1000 + k * 64).collect();
        let _ = ldx_walker(&addrs);
    }
}
