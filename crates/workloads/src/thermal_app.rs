//! The two-phase application of the §IV-J scheduling study.
//!
//! The paper's test application alternates between a compute-heavy
//! phase (an arithmetic loop) and an idle phase (a `nop` loop), run on
//! all fifty threads under two scheduling strategies:
//!
//! * **synchronized** — all threads execute the same phase at the same
//!   time, producing large chip-wide power swings;
//! * **interleaved** — half the threads (26 vs 24 in the paper) run one
//!   phase while the other half runs the opposite phase, flattening the
//!   power profile.
//!
//! The power↔temperature hysteresis of Figure 18 comes from driving the
//! thermal model with these workloads.

use piton_arch::isa::{Opcode, Reg};
use piton_arch::topology::TileId;
use piton_sim::machine::Machine;
use piton_sim::program::Program;
use serde::{Deserialize, Serialize};

use crate::asm::Assembler;

/// Scheduling strategy of the two-phase study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Schedule {
    /// All threads phase-aligned.
    Synchronized,
    /// Half the threads offset by one phase.
    Interleaved,
}

impl Schedule {
    /// The paper's plot label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Schedule::Synchronized => "Synchronized",
            Schedule::Interleaved => "Interleaved",
        }
    }
}

const ONE: Reg = Reg::new(2);
const COUNTER: Reg = Reg::new(3);
const PAT_A: Reg = Reg::new(10);
const PAT_B: Reg = Reg::new(11);
const SCRATCH: Reg = Reg::new(12);

fn emit_compute_phase(asm: &mut Assembler, iters: u32, tag: &str) {
    asm.movi(COUNTER, i64::from(iters));
    let top = format!("compute_{tag}");
    asm.label(&top);
    for k in 0..8 {
        let op = if k % 2 == 0 { Opcode::Add } else { Opcode::And };
        asm.alu(op, SCRATCH, PAT_A, PAT_B);
    }
    asm.alu(Opcode::Sub, COUNTER, COUNTER, ONE);
    asm.branch_to(Opcode::Bne, COUNTER, Reg::G0, &top);
}

fn emit_idle_phase(asm: &mut Assembler, iters: u32, tag: &str) {
    asm.movi(COUNTER, i64::from(iters));
    let top = format!("idle_{tag}");
    asm.label(&top);
    asm.nops(8);
    asm.alu(Opcode::Sub, COUNTER, COUNTER, ONE);
    asm.branch_to(Opcode::Bne, COUNTER, Reg::G0, &top);
}

/// Builds one two-phase thread: alternating compute and idle phases of
/// `phase_iters` inner iterations each, forever. `start_idle` starts in
/// the idle phase (the offset half of the interleaved schedule).
#[must_use]
pub fn two_phase_program(phase_iters: u32, start_idle: bool) -> Program {
    let mut asm = Assembler::new();
    asm.movi(ONE, 1);
    asm.movi(PAT_A, 0x5555_5555_5555_5555);
    asm.movi(PAT_B, -0x5555_5555_5555_5556);
    asm.label("outer");
    if start_idle {
        emit_idle_phase(&mut asm, phase_iters, "a");
        emit_compute_phase(&mut asm, phase_iters, "b");
    } else {
        emit_compute_phase(&mut asm, phase_iters, "a");
        emit_idle_phase(&mut asm, phase_iters, "b");
    }
    asm.jump("outer");
    asm.assemble()
}

/// Loads the two-phase application on all 50 threads under a schedule.
/// Interleaved offsets 24 of the 50 threads into the opposite phase
/// (the paper schedules 26 and 24).
pub fn load_two_phase(machine: &mut Machine, schedule: Schedule, phase_iters: u32) {
    let tiles = machine.config().tile_count();
    let mut loaded = 0usize;
    for core in 0..tiles {
        for slot in 0..2 {
            let start_idle = match schedule {
                Schedule::Synchronized => false,
                // Offset 24 of the 50 threads.
                Schedule::Interleaved => loaded % 2 == 1 && loaded < 48,
            };
            machine.load_thread(
                TileId::new(core),
                slot,
                two_phase_program(phase_iters, start_idle),
            );
            loaded += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piton_arch::config::ChipConfig;

    #[test]
    fn phases_alternate_in_activity() {
        let mut m = Machine::new(&ChipConfig::piton());
        m.load_thread(TileId::new(0), 0, two_phase_program(50, false));
        // During the compute phase the add/and mix dominates; during the
        // idle phase nops dominate. Sample two consecutive windows.
        m.run(500); // inside compute phase (50 iters x ~11 cyc = 550)
        let a = m.counters().clone();
        m.run(800); // into the idle phase
        let b = m.counters().delta_since(&a);
        let compute_rate_a = a.issues[Opcode::Add.index()] as f64 / a.cycles as f64;
        let nop_share_b =
            b.issues[Opcode::Nop.index()] as f64 / b.issues.iter().sum::<u64>() as f64;
        assert!(compute_rate_a > 0.2, "compute phase rate {compute_rate_a}");
        assert!(nop_share_b > 0.4, "idle phase nop share {nop_share_b}");
    }

    #[test]
    fn interleaved_offsets_about_half_the_threads() {
        // Measure chip activity variance: synchronized should swing the
        // add-issue rate much harder between windows than interleaved.
        let swing = |schedule: Schedule| {
            let mut m = Machine::new(&ChipConfig::piton());
            load_two_phase(&mut m, schedule, 40);
            let mut rates = Vec::new();
            let mut prev = m.counters().clone();
            for _ in 0..12 {
                m.run(300);
                let d = m.counters().delta_since(&prev);
                prev = m.counters().clone();
                rates.push(d.issues[Opcode::Add.index()] as f64 / d.cycles as f64);
            }
            let max = rates.iter().copied().fold(0.0f64, f64::max);
            let min = rates.iter().copied().fold(f64::MAX, f64::min);
            max - min
        };
        let sync_swing = swing(Schedule::Synchronized);
        let inter_swing = swing(Schedule::Interleaved);
        assert!(
            inter_swing < sync_swing,
            "interleaved {inter_swing} vs synchronized {sync_swing}"
        );
    }

    #[test]
    fn all_fifty_threads_load() {
        let mut m = Machine::new(&ChipConfig::piton());
        load_two_phase(&mut m, Schedule::Synchronized, 10);
        for t in m.config().topology().tiles() {
            assert!(m.core(t).any_running());
        }
    }
}
