//! The energy-per-instruction assembly tests of §IV-E.
//!
//! Each test places the target instruction in an infinite loop unrolled
//! by a factor of 20, sized to fit in the L1 caches, with operand values
//! set to the minimum (all zeros), maximum (all ones) or random pattern
//! of Figure 11. Two store variants reproduce the paper's store-buffer
//! methodology:
//!
//! * `stx (NF)` — nine `nop`s follow each store so the 8-entry store
//!   buffer always has space (their energy is subtracted afterwards);
//! * `stx (F)` — back-to-back stores fill the buffer and incur the
//!   speculative-issue roll-back.

use piton_arch::isa::{Opcode, OperandPattern, Reg};
use piton_sim::program::Program;

use crate::asm::Assembler;

/// Unroll factor of every EPI loop (§IV-E).
pub const UNROLL: usize = 20;

/// `nop`s inserted after each store in the `stx (NF)` test.
pub const STX_DRAIN_NOPS: usize = 9;

/// Store variant under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreVariant {
    /// Store buffer never fills (drain `nop`s inserted).
    NotFull,
    /// Store buffer fills; roll-backs included in the measurement.
    Full,
}

/// One measurable instruction case of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EpiCase {
    /// A plain ALU/FP/branch/nop instruction.
    Plain(Opcode),
    /// `ldx` hitting the L1.
    Load,
    /// `stx` hitting the L1.5, with the buffer full or not.
    Store(StoreVariant),
}

impl EpiCase {
    /// The sixteen cases of Figure 11, in presentation order.
    #[must_use]
    pub fn figure_11() -> Vec<EpiCase> {
        vec![
            EpiCase::Plain(Opcode::Nop),
            EpiCase::Plain(Opcode::And),
            EpiCase::Plain(Opcode::Add),
            EpiCase::Plain(Opcode::Mulx),
            EpiCase::Plain(Opcode::Sdivx),
            EpiCase::Plain(Opcode::Faddd),
            EpiCase::Plain(Opcode::Fmuld),
            EpiCase::Plain(Opcode::Fdivd),
            EpiCase::Plain(Opcode::Fadds),
            EpiCase::Plain(Opcode::Fmuls),
            EpiCase::Plain(Opcode::Fdivs),
            EpiCase::Load,
            EpiCase::Store(StoreVariant::Full),
            EpiCase::Store(StoreVariant::NotFull),
            EpiCase::Plain(Opcode::Beq),
            EpiCase::Plain(Opcode::Bne),
        ]
    }

    /// The label used on the Figure 11 x-axis.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            EpiCase::Plain(Opcode::Beq) => "beq (T)".to_owned(),
            EpiCase::Plain(Opcode::Bne) => "bne (NT)".to_owned(),
            EpiCase::Plain(op) => op.mnemonic().to_owned(),
            EpiCase::Load => "ldx".to_owned(),
            EpiCase::Store(StoreVariant::Full) => "stx (F)".to_owned(),
            EpiCase::Store(StoreVariant::NotFull) => "stx (NF)".to_owned(),
        }
    }

    /// The opcode whose Table VI latency enters the EPI formula.
    #[must_use]
    pub fn opcode(self) -> Opcode {
        match self {
            EpiCase::Plain(op) => op,
            EpiCase::Load => Opcode::Ldx,
            EpiCase::Store(_) => Opcode::Stx,
        }
    }

    /// Whether this case takes value operands (the min/random/max sweep
    /// applies).
    #[must_use]
    pub fn has_value_operands(self) -> bool {
        self.opcode().has_value_operands()
    }
}

/// Operand bit patterns for a test, per Figure 11's legend.
#[must_use]
pub fn operand_values(pattern: OperandPattern, seed: u64) -> (u64, u64) {
    match pattern {
        OperandPattern::Minimum => (0, 0),
        OperandPattern::Maximum => (u64::MAX, u64::MAX),
        OperandPattern::Random => {
            // SplitMix64: deterministic, well mixed.
            let next = |s: &mut u64| {
                *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = seed.wrapping_add(1);
            (next(&mut s), next(&mut s))
        }
    }
}

const SRC_A: Reg = Reg::new(10);
const SRC_B: Reg = Reg::new(11);
const DST: Reg = Reg::new(12);
const ADDR: Reg = Reg::new(13);

/// Per-tile data region for the load/store tests (distinct L2 lines per
/// tile, §IV-E: "Each of the 25 cores store to different L2 cache lines
/// ... to avoid invoking cache coherence").
#[must_use]
pub fn tile_data_base(tile_index: usize) -> u64 {
    0x100_0000 + (tile_index as u64) * 0x1_0000
}

/// Builds the EPI assembly test for one case/pattern on one tile.
///
/// The instruction stream fits comfortably in the 16 KB L1I and the data
/// (for loads/stores) in one L1 line per tile.
#[must_use]
pub fn epi_test(case: EpiCase, pattern: OperandPattern, tile_index: usize) -> Program {
    let (a_raw, b_raw) = operand_values(pattern, 42 + tile_index as u64);
    // Integer divides by zero trap on real SPARC; the paper's minimum
    // operand tests necessarily keep divisors legal.
    let b_val = match case {
        EpiCase::Plain(Opcode::Sdivx) if b_raw == 0 => 1,
        _ => b_raw,
    };

    let mut asm = Assembler::new();
    let base = tile_data_base(tile_index);
    asm.movi(SRC_A, a_raw as i64);
    asm.movi(SRC_B, b_val as i64);
    asm.movi(ADDR, base as i64);
    // The loaded value carries the operand pattern.
    asm.data_word(base, a_raw);

    // Warm the cache hierarchy so the measured loop sees steady state:
    // one load (fills L1/L1.5) and one store (takes ownership), drained.
    match case {
        EpiCase::Load => {
            asm.ldx(DST, ADDR, 0);
        }
        EpiCase::Store(_) => {
            asm.stx(SRC_A, ADDR, 0);
            asm.membar();
        }
        EpiCase::Plain(_) => {}
    }

    asm.label("loop");
    for _ in 0..UNROLL {
        match case {
            EpiCase::Plain(Opcode::Nop) => {
                asm.nop();
            }
            EpiCase::Plain(op) if op.is_branch() => {
                // Comparing a register with itself makes beq always
                // taken and bne always fall through; either way the
                // target is the next instruction, so the emitted
                // operands are identical for both opcodes.
                let next = asm.here() + 1;
                asm.emit(piton_arch::isa::Instruction::branch(op, SRC_A, SRC_A, next));
            }
            EpiCase::Plain(op) => {
                asm.alu(op, DST, SRC_A, SRC_B);
            }
            EpiCase::Load => {
                asm.ldx(DST, ADDR, 0);
            }
            EpiCase::Store(StoreVariant::NotFull) => {
                asm.stx(SRC_A, ADDR, 0);
                asm.nops(STX_DRAIN_NOPS);
            }
            EpiCase::Store(StoreVariant::Full) => {
                asm.stx(SRC_A, ADDR, 0);
            }
        }
    }
    asm.jump("loop");
    asm.assemble()
}

/// The reference loop used to subtract the drain-`nop` energy from the
/// `stx (NF)` measurement: the same loop shape with only the `nop`s.
#[must_use]
pub fn stx_nf_nop_reference(tile_index: usize) -> Program {
    let mut asm = Assembler::new();
    asm.movi(ADDR, tile_data_base(tile_index) as i64);
    asm.label("loop");
    for _ in 0..UNROLL {
        asm.nops(STX_DRAIN_NOPS);
    }
    asm.jump("loop");
    asm.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use piton_arch::config::ChipConfig;
    use piton_arch::topology::TileId;
    use piton_sim::machine::Machine;

    #[test]
    fn figure_11_has_sixteen_cases() {
        let cases = EpiCase::figure_11();
        assert_eq!(cases.len(), 16);
        assert_eq!(cases[0].label(), "nop");
        assert_eq!(cases[12].label(), "stx (F)");
        assert_eq!(cases[14].label(), "beq (T)");
    }

    #[test]
    fn operand_patterns_hit_extremes() {
        assert_eq!(operand_values(OperandPattern::Minimum, 0), (0, 0));
        assert_eq!(
            operand_values(OperandPattern::Maximum, 0),
            (u64::MAX, u64::MAX)
        );
        let (a, b) = operand_values(OperandPattern::Random, 0);
        assert_ne!(a, 0);
        assert_ne!(a, b);
        // Deterministic per seed.
        assert_eq!(
            operand_values(OperandPattern::Random, 5),
            operand_values(OperandPattern::Random, 5)
        );
    }

    #[test]
    fn tests_fit_in_the_l1_caches() {
        // §IV-E: "We verified ... the assembly test fits in the L1
        // caches of each core".
        let cfg = ChipConfig::piton();
        for case in EpiCase::figure_11() {
            let p = epi_test(case, OperandPattern::Random, 0);
            assert!(
                p.fits_in(cfg.l1i.size_bytes),
                "{} does not fit: {} B",
                case.label(),
                p.code_bytes()
            );
        }
    }

    fn run_case(case: EpiCase, cycles: u64) -> piton_sim::events::ActivityCounters {
        let mut m = Machine::new(&ChipConfig::piton());
        for t in 0..25 {
            m.load_thread(TileId::new(t), 0, epi_test(case, OperandPattern::Random, t));
        }
        m.run(cycles);
        m.counters().clone()
    }

    #[test]
    fn add_test_issues_mostly_adds() {
        let act = run_case(EpiCase::Plain(Opcode::Add), 20_000);
        let adds = act.issues[Opcode::Add.index()];
        let total = act.total_issues();
        assert!(adds * 10 > total * 8, "adds {adds} of {total}");
    }

    #[test]
    fn load_test_stays_in_the_l1_after_warmup() {
        let act = run_case(EpiCase::Load, 30_000);
        // One cold miss per tile; everything else L1 hits.
        assert!(act.l1d_misses <= 25 * 2, "misses {}", act.l1d_misses);
        assert!(act.issues[Opcode::Ldx.index()] > 25 * 1_000);
        assert_eq!(act.l2_misses, act.offchip_requests);
    }

    #[test]
    fn store_nf_never_rolls_back_and_f_always_does() {
        let nf = run_case(EpiCase::Store(StoreVariant::NotFull), 30_000);
        assert_eq!(nf.store_rollbacks, 0);
        assert!(nf.sb_enqueues > 25 * 100);

        let full = run_case(EpiCase::Store(StoreVariant::Full), 30_000);
        assert!(
            full.store_rollbacks > 25 * 100,
            "rollbacks {}",
            full.store_rollbacks
        );
    }

    #[test]
    fn stores_avoid_cross_tile_coherence() {
        let act = run_case(EpiCase::Store(StoreVariant::NotFull), 30_000);
        // Distinct L2 lines per tile: no invalidations at steady state.
        assert_eq!(act.invalidations, 0);
    }

    #[test]
    fn branch_tests_execute_branches() {
        let taken = run_case(EpiCase::Plain(Opcode::Beq), 20_000);
        assert!(taken.issues[Opcode::Beq.index()] > 25 * 500);
        let not_taken = run_case(EpiCase::Plain(Opcode::Bne), 20_000);
        assert!(not_taken.issues[Opcode::Bne.index()] > 25 * 500);
    }

    #[test]
    fn operand_pattern_changes_recorded_activity() {
        let mut min_act = 0.0;
        let mut max_act = 0.0;
        for (pattern, out) in [
            (OperandPattern::Minimum, &mut min_act),
            (OperandPattern::Maximum, &mut max_act),
        ] {
            let mut m = Machine::new(&ChipConfig::piton());
            for t in 0..25 {
                m.load_thread(
                    TileId::new(t),
                    0,
                    epi_test(EpiCase::Plain(Opcode::Add), pattern, t),
                );
            }
            m.run(10_000);
            *out = m.counters().mean_operand_activity(Opcode::Add).unwrap();
        }
        assert!(min_act < 0.05, "min activity {min_act}");
        assert!(max_act > 0.9, "max activity {max_act}");
    }
}
