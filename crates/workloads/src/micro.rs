//! The §IV-H microbenchmarks: Int, HP (High Power) and Hist.
//!
//! * **Int** — a tight loop of integer instructions that maximizes
//!   switching activity.
//! * **HP** — two distinct thread kinds: a pure integer loop, and a
//!   mixed loop with a 5:1 computation-to-memory ratio. The paper's
//!   highest observed chip power (~3.5 W) comes from HP on all 50
//!   threads.
//! * **Hist** — a parallel shared-memory histogram: each thread
//!   computes a histogram over its slice of a shared array, contending
//!   for per-bucket locks before updating the shared buckets. Unlike
//!   Int/HP (constant work *per thread*), Hist keeps the *total* work
//!   constant, so per-thread work shrinks as threads are added — the
//!   source of its distinctive power and energy scaling (§IV-H1/2).
//!
//! Loaders map threads onto cores in the paper's two configurations:
//! one thread per core (multicore) or two threads per core
//! (multithreading), with HP's two thread kinds alternated across cores
//! (1 T/C) or paired within each core (2 T/C), as §IV-H1 describes.

use piton_arch::isa::{Opcode, Reg};
use piton_arch::topology::TileId;
use piton_sim::machine::Machine;
use piton_sim::program::Program;
use serde::{Deserialize, Serialize};

use crate::asm::Assembler;

/// Threads-per-core configuration of §IV-H.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadsPerCore {
    /// Multicore: one thread on each active core.
    One,
    /// Multithreading: two threads on each active core.
    Two,
}

impl ThreadsPerCore {
    /// Threads per core as a number.
    #[must_use]
    pub fn count(self) -> usize {
        match self {
            ThreadsPerCore::One => 1,
            ThreadsPerCore::Two => 2,
        }
    }

    /// The paper's axis label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ThreadsPerCore::One => "1 T/C",
            ThreadsPerCore::Two => "2 T/C",
        }
    }
}

/// How many loop iterations a workload runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunLength {
    /// Infinite loop (steady-state power measurement).
    Forever,
    /// Fixed iterations then halt (execution-time/energy measurement).
    Iterations(u32),
}

impl RunLength {
    fn emit_loop_control(self, asm: &mut Assembler, counter: Reg, one: Reg, top: &str) {
        match self {
            RunLength::Forever => {
                asm.jump(top);
            }
            RunLength::Iterations(_) => {
                asm.alu(Opcode::Sub, counter, counter, one);
                asm.branch_to(Opcode::Bne, counter, Reg::G0, top);
                asm.halt();
            }
        }
    }

    fn init_counter(self, asm: &mut Assembler, counter: Reg) {
        if let RunLength::Iterations(n) = self {
            asm.movi(counter, i64::from(n));
        }
    }
}

const ONE: Reg = Reg::new(2);
const COUNTER: Reg = Reg::new(3);
const PAT_A: Reg = Reg::new(10);
const PAT_B: Reg = Reg::new(11);
const SCRATCH: Reg = Reg::new(12);
const ADDR: Reg = Reg::new(13);

/// High-switching operand patterns for Int/HP (alternating bits).
const SWITCH_A: i64 = 0x5555_5555_5555_5555;
const SWITCH_B: i64 = -0x5555_5555_5555_5556; // 0xAAAA_AAAA_AAAA_AAAA

/// Per-tile private data address (keeps HP's memory traffic
/// coherence-free).
#[must_use]
pub fn hp_data_addr(tile: usize, thread: usize) -> u64 {
    0x400_0000 + (tile as u64 * 2 + thread as u64) * 0x1_0000
}

/// The Int microbenchmark: a tight integer loop maximizing switching.
#[must_use]
pub fn int_program(length: RunLength) -> Program {
    let mut asm = Assembler::new();
    asm.movi(ONE, 1);
    asm.movi(PAT_A, SWITCH_A);
    asm.movi(PAT_B, SWITCH_B);
    length.init_counter(&mut asm, COUNTER);
    asm.label("loop");
    // Unrolled x20 so one thread issues nearly every cycle (IPC ~0.9),
    // like the paper's description of Int keeping each core busy.
    for k in 0..20 {
        let op = if k % 2 == 0 { Opcode::Add } else { Opcode::And };
        asm.alu(op, SCRATCH, PAT_A, PAT_B);
    }
    length.emit_loop_control(&mut asm, COUNTER, ONE, "loop");
    asm.assemble()
}

/// The two HP thread kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HpKind {
    /// Pure integer computation.
    Compute,
    /// Mixed loop: 5:1 computation to memory (loads, stores, integer).
    Mixed,
}

/// One HP thread program.
#[must_use]
pub fn hp_program(kind: HpKind, tile: usize, thread: usize, length: RunLength) -> Program {
    match kind {
        HpKind::Compute => int_program(length),
        HpKind::Mixed => {
            let mut asm = Assembler::new();
            let base = hp_data_addr(tile, thread);
            asm.movi(ONE, 1);
            asm.movi(PAT_A, SWITCH_A);
            asm.movi(PAT_B, SWITCH_B);
            asm.movi(ADDR, base as i64);
            asm.data_word(base, 0x0F0F_F0F0_0F0F_F0F0);
            // Take ownership so steady-state stores are 10-cycle drains.
            asm.stx(PAT_A, ADDR, 0);
            asm.membar();
            length.init_counter(&mut asm, COUNTER);
            asm.label("loop");
            // 14 compute : 3 memory ≈ the paper's 5:1 ratio, sized so
            // one iteration takes the same cycles (25) as the compute
            // thread's — the two kinds stay load-balanced on a shared
            // core.
            for k in 0..14 {
                let op = if k % 2 == 0 { Opcode::Add } else { Opcode::And };
                asm.alu(op, SCRATCH, PAT_A, PAT_B);
            }
            asm.ldx(SCRATCH, ADDR, 0);
            asm.ldx(SCRATCH, ADDR, 8);
            asm.stx(PAT_B, ADDR, 0);
            length.emit_loop_control(&mut asm, COUNTER, ONE, "loop");
            asm.assemble()
        }
    }
}

/// Shared-memory layout of the Hist microbenchmark.
pub mod hist_layout {
    /// Number of histogram buckets (and per-bucket locks).
    pub const BUCKETS: u64 = 8;
    /// Input array base address.
    pub const INPUT_BASE: u64 = 0x200_0000;
    /// Total input elements (total work is constant across thread
    /// counts, §IV-H). 32 KB of input overflows the 8 KB L1 at low
    /// thread counts, giving the memory/compute overlap §IV-H2 credits
    /// for Hist's multithreading efficiency.
    pub const INPUT_ELEMENTS: u64 = 4_096;
    /// Bucket array base (one 64 B line per bucket).
    pub const BUCKET_BASE: u64 = 0x300_0000;
    /// Lock array base (one 64 B line per lock).
    pub const LOCK_BASE: u64 = 0x300_1000;

    /// Address of bucket `b`.
    #[must_use]
    pub fn bucket_addr(b: u64) -> u64 {
        BUCKET_BASE + b * 64
    }

    /// Address of lock `b`.
    #[must_use]
    pub fn lock_addr(b: u64) -> u64 {
        LOCK_BASE + b * 64
    }

    /// The value of input element `i` (seeded, uniform over buckets).
    #[must_use]
    pub fn element(i: u64) -> u64 {
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 27)
    }
}

/// One Hist thread: computes the histogram of its slice of the shared
/// input, locking each bucket before updating it.
///
/// `length` counts whole passes over the thread's slice.
///
/// # Panics
///
/// Panics unless `tid < nthreads` and `nthreads` divides the input
/// reasonably (each thread needs at least one element).
#[must_use]
pub fn hist_program(tid: usize, nthreads: usize, length: RunLength) -> Program {
    use hist_layout as h;
    assert!(tid < nthreads, "tid out of range");
    let per_thread = (h::INPUT_ELEMENTS as usize / nthreads).max(1) as u64;
    let start = (tid as u64 * per_thread).min(h::INPUT_ELEMENTS - 1);

    let elem_ptr = Reg::new(1);
    let remaining = Reg::new(4);
    let value = Reg::new(5);
    let bucket_off = Reg::new(6);
    let lock_addr = Reg::new(7);
    let mask = Reg::new(8);
    let stride = Reg::new(9);
    let swap = Reg::new(14);
    let count = Reg::new(15);
    let lock_base = Reg::new(16);
    let bucket_base = Reg::new(17);
    let eight = Reg::new(18);
    let bucket_addr = Reg::new(19);

    let mut asm = Assembler::new();
    asm.movi(ONE, 1);
    asm.movi(mask, (h::BUCKETS - 1) as i64);
    asm.movi(stride, 64);
    asm.movi(eight, 8);
    asm.movi(lock_base, h::LOCK_BASE as i64);
    asm.movi(bucket_base, h::BUCKET_BASE as i64);
    // Thread 0 carries the shared data image (all threads writing the
    // same image is harmless but wasteful).
    if tid == 0 {
        for i in 0..h::INPUT_ELEMENTS {
            asm.data_word(h::INPUT_BASE + i * 8, h::element(i));
        }
    }
    length.init_counter(&mut asm, COUNTER);

    asm.label("pass");
    asm.movi(elem_ptr, (h::INPUT_BASE + start * 8) as i64);
    asm.movi(remaining, per_thread as i64);
    asm.label("elem");
    asm.ldx(value, elem_ptr, 0);
    asm.alu(Opcode::And, bucket_off, value, mask);
    asm.alu(Opcode::Mulx, bucket_off, bucket_off, stride);
    asm.alu(Opcode::Add, lock_addr, bucket_off, lock_base);
    asm.alu(Opcode::Add, bucket_addr, bucket_off, bucket_base);
    // Acquire the bucket lock: test-and-test-and-set. Contending
    // threads spin on a cached load (stalling on coherence refetches
    // after each release) rather than hammering the L2 with atomics.
    asm.label("acquire");
    asm.ldx(swap, lock_addr, 0);
    asm.branch_to(Opcode::Bne, swap, Reg::G0, "acquire");
    asm.movi(swap, 1);
    asm.casx(swap, lock_addr, Reg::G0);
    asm.branch_to(Opcode::Bne, swap, Reg::G0, "acquire");
    // Critical section: bucket += 1.
    asm.ldx(count, bucket_addr, 0);
    asm.alu(Opcode::Add, count, count, ONE);
    asm.stx(count, bucket_addr, 0);
    asm.membar();
    // Release.
    asm.stx(Reg::G0, lock_addr, 0);
    asm.membar();
    // Next element.
    asm.alu(Opcode::Add, elem_ptr, elem_ptr, eight);
    asm.alu(Opcode::Sub, remaining, remaining, ONE);
    asm.branch_to(Opcode::Bne, remaining, Reg::G0, "elem");
    length.emit_loop_control(&mut asm, COUNTER, ONE, "pass");
    asm.assemble()
}

/// The three microbenchmarks of §IV-H.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Microbenchmark {
    /// Integer switching loop.
    Int,
    /// High Power: integer + mixed thread kinds.
    Hp,
    /// Shared-memory histogram.
    Hist,
}

impl Microbenchmark {
    /// All three, in the paper's order.
    pub const ALL: [Microbenchmark; 3] = [
        Microbenchmark::Int,
        Microbenchmark::Hp,
        Microbenchmark::Hist,
    ];

    /// The paper's label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Microbenchmark::Int => "Int",
            Microbenchmark::Hp => "HP",
            Microbenchmark::Hist => "Hist",
        }
    }
}

/// Loads `threads` threads of a microbenchmark onto a machine in the
/// given threads-per-core configuration, following the paper's thread
/// mappings (§IV-H1): with 1 T/C, HP's two kinds alternate across
/// cores; with 2 T/C, each core runs one thread of each kind.
///
/// Returns the number of active cores.
///
/// # Panics
///
/// Panics if the configuration needs more cores than the chip has.
pub fn load_microbenchmark(
    machine: &mut Machine,
    bench: Microbenchmark,
    threads: usize,
    tpc: ThreadsPerCore,
    length: RunLength,
) -> usize {
    use std::sync::Arc;

    let tpc_n = tpc.count();
    let cores = threads.div_ceil(tpc_n);
    assert!(
        cores <= machine.config().tile_count(),
        "{threads} threads at {} need {cores} cores",
        tpc.label()
    );
    // Int and HP's compute kind are position-independent, so every
    // thread shares one program image: one assembly pass, and the
    // engine's pointer-identity grouping keeps same-program lanes on
    // one worker. HP's mixed kind and Hist embed per-thread addresses
    // and stay distinct.
    let shared_int: Option<Arc<Program>> = match bench {
        Microbenchmark::Int | Microbenchmark::Hp => Some(Arc::new(int_program(length))),
        Microbenchmark::Hist => None,
    };
    for t in 0..threads {
        let (core, slot) = match tpc {
            ThreadsPerCore::One => (t, 0),
            ThreadsPerCore::Two => (t / 2, t % 2),
        };
        let shared = match bench {
            Microbenchmark::Int => shared_int.as_ref(),
            Microbenchmark::Hp => {
                let kind = match tpc {
                    // Alternate kinds across cores.
                    ThreadsPerCore::One => {
                        if core % 2 == 0 {
                            HpKind::Compute
                        } else {
                            HpKind::Mixed
                        }
                    }
                    // One of each kind within a core.
                    ThreadsPerCore::Two => {
                        if slot == 0 {
                            HpKind::Compute
                        } else {
                            HpKind::Mixed
                        }
                    }
                };
                match kind {
                    HpKind::Compute => shared_int.as_ref(),
                    HpKind::Mixed => None,
                }
            }
            Microbenchmark::Hist => None,
        };
        if let Some(program) = shared {
            machine.load_thread_shared(TileId::new(core), slot, program);
        } else {
            let program = match bench {
                Microbenchmark::Hp => hp_program(HpKind::Mixed, core, slot, length),
                Microbenchmark::Hist => hist_program(t, threads, length),
                Microbenchmark::Int => unreachable!("Int always shares"),
            };
            machine.load_thread(TileId::new(core), slot, program);
        }
    }
    cores
}

#[cfg(test)]
mod tests {
    use super::*;
    use piton_arch::config::ChipConfig;

    fn machine() -> Machine {
        Machine::new(&ChipConfig::piton())
    }

    #[test]
    fn int_fixed_iterations_halts() {
        let mut m = machine();
        m.load_thread(TileId::new(0), 0, int_program(RunLength::Iterations(100)));
        assert!(m.run_until_halted(50_000));
        let adds = m.counters().issues[Opcode::Add.index()];
        assert!(adds >= 400, "adds {adds}");
    }

    #[test]
    fn int_forever_never_halts() {
        let mut m = machine();
        m.load_thread(TileId::new(0), 0, int_program(RunLength::Forever));
        assert!(!m.run_until_halted(10_000));
    }

    #[test]
    fn hp_mixed_keeps_five_to_one_ratio() {
        let mut m = machine();
        m.load_thread(
            TileId::new(0),
            0,
            hp_program(HpKind::Mixed, 0, 0, RunLength::Iterations(200)),
        );
        assert!(m.run_until_halted(200_000));
        let act = m.counters();
        let compute = act.issues[Opcode::Add.index()] + act.issues[Opcode::And.index()];
        let memory = act.issues[Opcode::Ldx.index()] + act.issues[Opcode::Stx.index()];
        let ratio = compute as f64 / memory as f64;
        assert!((4.0..=6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hist_counts_every_element_exactly_once_per_pass() {
        use hist_layout as h;
        let mut m = machine();
        let threads = 8;
        for t in 0..threads {
            m.load_thread(
                TileId::new(t),
                0,
                hist_program(t, threads, RunLength::Iterations(1)),
            );
        }
        assert!(m.run_until_halted(30_000_000), "hist did not finish");
        let total: u64 = (0..h::BUCKETS)
            .map(|b| m.memsys().peek_mem(h::bucket_addr(b)))
            .sum();
        assert_eq!(total, h::INPUT_ELEMENTS, "lost or duplicated updates");
        // Histogram matches a host-side reference count.
        for b in 0..h::BUCKETS {
            let expected = (0..h::INPUT_ELEMENTS)
                .filter(|&i| h::element(i) & (h::BUCKETS - 1) == b)
                .count() as u64;
            assert_eq!(
                m.memsys().peek_mem(h::bucket_addr(b)),
                expected,
                "bucket {b}"
            );
        }
    }

    #[test]
    fn hist_total_work_is_constant_across_thread_counts() {
        use hist_layout as h;
        for threads in [2usize, 4, 16] {
            let mut m = machine();
            for t in 0..threads {
                m.load_thread(
                    TileId::new(t),
                    0,
                    hist_program(t, threads, RunLength::Iterations(1)),
                );
            }
            assert!(m.run_until_halted(40_000_000), "{threads} threads stuck");
            let total: u64 = (0..h::BUCKETS)
                .map(|b| m.memsys().peek_mem(h::bucket_addr(b)))
                .sum();
            assert_eq!(total, h::INPUT_ELEMENTS, "{threads} threads");
        }
    }

    #[test]
    fn loader_maps_threads_per_paper() {
        // 16 threads at 1 T/C -> 16 cores; at 2 T/C -> 8 cores.
        let mut m1 = machine();
        let cores1 = load_microbenchmark(
            &mut m1,
            Microbenchmark::Int,
            16,
            ThreadsPerCore::One,
            RunLength::Forever,
        );
        assert_eq!(cores1, 16);
        let mut m2 = machine();
        let cores2 = load_microbenchmark(
            &mut m2,
            Microbenchmark::Int,
            16,
            ThreadsPerCore::Two,
            RunLength::Forever,
        );
        assert_eq!(cores2, 8);
        assert!(m2.core(TileId::new(7)).any_running());
        assert!(!m2.core(TileId::new(8)).any_running());
        // Identical Int images are one shared allocation, so the dense
        // engine's pointer-identity grouping sees one program class.
        let id = m2.core(TileId::new(0)).program_identity();
        assert_ne!(id, 0);
        for c in 1..8 {
            assert_eq!(m2.core(TileId::new(c)).program_identity(), id, "core {c}");
        }
    }

    #[test]
    #[should_panic(expected = "need")]
    fn too_many_threads_panics() {
        let mut m = machine();
        let _ = load_microbenchmark(
            &mut m,
            Microbenchmark::Int,
            26,
            ThreadsPerCore::One,
            RunLength::Forever,
        );
    }

    #[test]
    fn multithreading_int_takes_about_twice_as_long() {
        // §IV-H2: "the multithreading/multicore execution time ratio for
        // Int is two, as no instruction overlapping occurs".
        let iters = RunLength::Iterations(500);
        let mut mc = machine();
        load_microbenchmark(&mut mc, Microbenchmark::Int, 2, ThreadsPerCore::One, iters);
        assert!(mc.run_until_halted(1_000_000));
        let t_mc = mc.now();

        let mut mt = machine();
        load_microbenchmark(&mut mt, Microbenchmark::Int, 2, ThreadsPerCore::Two, iters);
        assert!(mt.run_until_halted(2_000_000));
        let t_mt = mt.now();

        let ratio = t_mt as f64 / t_mc as f64;
        assert!((1.5..=2.2).contains(&ratio), "MT/MC ratio {ratio}");
    }
}
