//! Multithreading versus multicore (a slice of Figure 14).
//!
//! Runs the Int and Hist microbenchmarks with 16 threads as 16
//! single-threaded cores (multicore) and as 8 dual-threaded cores
//! (multithreading), then compares power, execution time and energy with
//! the paper's idle-charging convention.
//!
//! Run with: `cargo run --release --example threads_vs_cores`

use piton::characterization::experiments::{mt_vs_mc, Fidelity};
use piton::workloads::micro::{Microbenchmark, ThreadsPerCore};

fn main() {
    println!("Measuring 16 threads as multicore (1 T/C) and multithreading (2 T/C)...\n");
    let result = mt_vs_mc::run_with_threads(&[16], Fidelity::quick());
    println!("{}", result.render());

    for bench in [Microbenchmark::Int, Microbenchmark::Hist] {
        let s = result.series_for(bench);
        let mc = s
            .points
            .iter()
            .find(|p| p.tpc == ThreadsPerCore::One)
            .unwrap();
        let mt = s
            .points
            .iter()
            .find(|p| p.tpc == ThreadsPerCore::Two)
            .unwrap();
        let winner = if mt.total_energy().0 < mc.total_energy().0 {
            "multithreading"
        } else {
            "multicore"
        };
        println!(
            "{:4}: MT {:.1} µJ vs MC {:.1} µJ  →  {winner} is more energy efficient",
            bench.label(),
            mt.total_energy().0 * 1e6,
            mc.total_energy().0 * 1e6,
        );
    }
    println!("\n§IV-H2: integer-bound code favors multicore; workloads with");
    println!("memory/compute overlap (Hist) favor multithreading.");
}
