//! EPI methodology walk-through (§IV-E, a slice of Figure 11).
//!
//! Builds the paper's assembly tests for a few instruction classes, runs
//! them on all 25 simulated cores, measures steady-state power through
//! the virtual bench, and applies the paper's EPI formula — then checks
//! the famous "three adds for one load" insight.
//!
//! Run with: `cargo run --release --example epi_tour`

use piton::arch::isa::{Opcode, OperandPattern};
use piton::characterization::experiments::{epi, Fidelity};
use piton::workloads::epi::EpiCase;

fn main() {
    let cases = [
        EpiCase::Plain(Opcode::Nop),
        EpiCase::Plain(Opcode::Add),
        EpiCase::Plain(Opcode::Mulx),
        EpiCase::Plain(Opcode::Sdivx),
        EpiCase::Plain(Opcode::Faddd),
        EpiCase::Load,
    ];
    println!("Measuring EPI on 25 cores (this runs the full methodology)...\n");
    let result = epi::run_cases(&cases, Fidelity::quick());
    println!("{}", result.render());

    let add = result
        .row("add")
        .and_then(|r| r.at(OperandPattern::Random))
        .expect("add measured");
    let ldx = result
        .row("ldx")
        .and_then(|r| r.at(OperandPattern::Random))
        .expect("ldx measured");
    println!(
        "Recompute-vs-load: one L1-hit ldx ({:.0} pJ, 3 cycles) ≈ {:.1} adds ({:.0} pJ, 1 cycle each).",
        ldx.value,
        ldx.value / add.value,
        add.value
    );
    println!("The paper's §IV-E insight: if a value can be recomputed in fewer than");
    println!("three adds, recomputing beats loading it from the cache.");
}
