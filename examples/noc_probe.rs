//! NoC energy-per-flit probe (Figure 12).
//!
//! Streams dummy invalidation packets from the chipset into the chip —
//! seven valid flits every 47 bridge cycles — at increasing hop counts
//! and payload switching patterns, and reports the fitted pJ/hop
//! trendlines next to the paper's.
//!
//! Run with: `cargo run --release --example noc_probe`

use piton::characterization::experiments::{noc_energy, Fidelity};

fn main() {
    println!("Sweeping NoC dummy-packet traffic over 0..=8 hops × 4 patterns...\n");
    let result = noc_energy::run(Fidelity::quick());
    println!("{}", result.render());

    let hsw = result.series_for("HSW").expect("HSW series");
    let across_chip = hsw.points[8].1;
    println!(
        "Sending one flit across the whole chip (8 hops, half switching) costs ~{across_chip:.0} pJ —"
    );
    println!("about one add instruction. On-chip data movement is not where this");
    println!("chip's power goes (§IV-G, contradicting the dominant-NoC folklore).");
}
