//! Quickstart: assemble the virtual Piton bench, print the chip's
//! architectural parameters (Table I), and take the Table V power
//! measurements — static power with clocks grounded, then idle power at
//! the 500.05 MHz default operating point.
//!
//! Run with: `cargo run --release --example quickstart`

use piton::arch::config::{ChipConfig, MeasurementDefaults, SystemFrequencies};
use piton::board::system::PitonSystem;

fn main() {
    let cfg = ChipConfig::piton();
    println!("== Piton (Table I) ==");
    println!("process:           {}", cfg.process);
    println!(
        "die:               {:.0} mm² ({} tiles, {} threads)",
        cfg.die_area_mm2(),
        cfg.tile_count(),
        cfg.total_thread_count()
    );
    println!(
        "caches:            L1I {} KB, L1D {} KB, L1.5 {} KB, L2 {} KB/slice ({} KB aggregate)",
        cfg.l1i.size_bytes / 1024,
        cfg.l1d.size_bytes / 1024,
        cfg.l15.size_bytes / 1024,
        cfg.l2.size_bytes / 1024,
        cfg.l2_total_bytes() / 1024
    );
    println!(
        "NoCs:              {} × {}-bit, {}×{} mesh (diameter {} hops)",
        cfg.noc_count,
        cfg.noc_width_bits,
        cfg.topology().width(),
        cfg.topology().height(),
        cfg.topology().diameter()
    );

    let defaults = MeasurementDefaults::table_iii();
    println!("\n== Default measurement parameters (Table III) ==");
    println!(
        "VDD {} / VCS {} / VIO {} @ {:.2} MHz",
        defaults.vdd,
        defaults.vcs,
        defaults.vio,
        defaults.core_clock.as_mhz()
    );
    let freqs = SystemFrequencies::piton_system();
    println!(
        "system clocks (Table II): gateway {} MHz, chipset {} MHz, DRAM PHY {} MHz",
        freqs.gateway_to_piton.as_mhz(),
        freqs.chipset_logic.as_mhz(),
        freqs.dram_phy.as_mhz()
    );

    println!("\n== Table V measurements (Chip #2) ==");
    let mut sys = PitonSystem::reference_chip_2();
    let static_power = sys.measure_static_power();
    println!("static power @ room temperature:  {static_power}  (paper: 389.3±1.5 mW)");
    let idle = sys.measure_idle_power();
    println!("idle power @ 500.05 MHz:          {idle}  (paper: 2015.3±1.5 mW)");
}
