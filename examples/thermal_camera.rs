//! Thermal scheduling demo (Figure 18).
//!
//! Removes the heat sink, drops the chip to 100.01 MHz / 0.9 V (§IV-J),
//! runs the two-phase application on all 50 threads under synchronized
//! and interleaved scheduling, and watches the package through the
//! virtual thermal camera: power/temperature hysteresis for both, and a
//! cooler average for the balanced schedule.
//!
//! Run with: `cargo run --release --example thermal_camera`

use piton::characterization::experiments::{thermal, Fidelity};
use piton::workloads::thermal_app::Schedule;

fn main() {
    println!("Running the two-phase application on 50 threads, logging 1 Hz...\n");
    let result = thermal::run_scheduling(64, 1.0, Fidelity::quick());
    println!("{}", result.render());

    println!("Power trace (first 24 s, synchronized):");
    let sync = result.trace(Schedule::Synchronized);
    for s in sync.samples.iter().take(24).step_by(2) {
        let bars = ((s.power.0 - 0.4) * 60.0).max(0.0) as usize;
        println!(
            "  t={:4.0}s  {:6.1} mW  {:4.1} °C  {}",
            s.time_s,
            s.power.as_mw(),
            s.surface_c,
            "#".repeat(bars.min(70))
        );
    }
    println!("\n§IV-J: a balanced (interleaved) schedule both caps the power swing");
    println!("and lowers the average package temperature.");
}
