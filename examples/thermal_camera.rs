//! Thermal scheduling demo (Figure 18).
//!
//! Removes the heat sink, drops the chip to 100.01 MHz / 0.9 V (§IV-J),
//! runs the two-phase application on all 50 threads under synchronized
//! and interleaved scheduling, and watches the package through the
//! virtual thermal camera: power/temperature hysteresis for both, and a
//! cooler average for the balanced schedule.
//!
//! Run with: `cargo run --release --example thermal_camera`

use piton::arch::units::Watts;
use piton::characterization::experiments::{thermal, Fidelity};
use piton::power::thermal::{Cooling, ThermalModel, ThermalStep};
use piton::workloads::thermal_app::Schedule;

/// The cooldown watched at the end of the demo: the §IV-J rig settled
/// at 80 °C junction, then unpowered — integrated with the same
/// fixed-timestep stepper the experiments and the governor loop use.
/// The regression test in `tests/model_properties.rs` pins this
/// trajectory against a raw RC integration, so the example can never
/// drift onto a private thermal path.
pub fn cooldown_trajectory() -> Vec<(f64, f64)> {
    let mut model = ThermalModel::new(Cooling::BarePackageFan { effectiveness: 0.5 }, 20.0);
    model.settle_to_junction(80.0);
    ThermalStep::new(5.0).trajectory(&mut model, &[Watts(0.0); 12])
}

fn main() {
    println!("Running the two-phase application on 50 threads, logging 1 Hz...\n");
    let result = thermal::run_scheduling(64, 1.0, Fidelity::quick());
    println!("{}", result.render());

    println!("Power trace (first 24 s, synchronized):");
    let sync = result.trace(Schedule::Synchronized);
    for s in sync.samples.iter().take(24).step_by(2) {
        let bars = ((s.power.0 - 0.4) * 60.0).max(0.0) as usize;
        println!(
            "  t={:4.0}s  {:6.1} mW  {:4.1} °C  {}",
            s.time_s,
            s.power.as_mw(),
            s.surface_c,
            "#".repeat(bars.min(70))
        );
    }
    println!("\n§IV-J: a balanced (interleaved) schedule both caps the power swing");
    println!("and lowers the average package temperature.");

    println!("\nCooldown after the run (fan on, chip unpowered, 5 s steps):");
    for (k, &(junction_c, surface_c)) in cooldown_trajectory().iter().enumerate() {
        let bars = ((surface_c - 20.0) * 1.5).max(0.0) as usize;
        println!(
            "  t={:3}s  junction {:5.1} °C  surface {:5.1} °C  {}",
            (k + 1) * 5,
            junction_c,
            surface_c,
            "#".repeat(bars.min(70))
        );
    }
}
