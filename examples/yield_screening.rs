//! Chip screening (Table IV) and the three reference dies.
//!
//! Generates the synthetic two-wafer run (118 dies, 45 packaged), tests
//! 32 packaged chips and classifies them like §IV-A; then shows how the
//! three named chips' process corners show up in their Table V numbers.
//!
//! Run with: `cargo run --release --example yield_screening`

use piton::board::population::NamedChip;
use piton::board::system::PitonSystem;
use piton::characterization::experiments::yield_stats;

fn main() {
    let result = yield_stats::run();
    println!("{}", result.render());

    println!("Reference dies (fitted corners):");
    for (chip, mut sys) in [
        (NamedChip::Chip1, PitonSystem::reference_chip_1()),
        (NamedChip::Chip2, PitonSystem::reference_chip_2()),
        (NamedChip::Chip3, PitonSystem::reference_chip_3()),
    ] {
        let corner = chip.corner();
        let static_p = sys.measure_static_power();
        let idle = sys.measure_idle_power();
        println!(
            "  {chip:?}: speed ×{:.2}, leakage ×{:.2} → static {static_p}, idle {idle}",
            corner.speed, corner.leakage
        );
    }
    println!("\nOnly stable, fully-functional chips are used for characterization");
    println!("(§IV-A); Chip #1's fast-but-leaky corner is what trips the Figure 9");
    println!("thermal limit at 1.2 V.");
}
