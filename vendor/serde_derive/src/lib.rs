//! Offline stand-in for `serde_derive`.
//!
//! Emits empty token streams: the workspace's derives are declarative
//! (the structs are export-ready data carriers) and no code path
//! requires an actual `Serialize`/`Deserialize` implementation, so a
//! no-op derive keeps every annotated type compiling without the real
//! (registry-only) proc-macro stack.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
