//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a registry, so this vendored
//! crate implements the subset of the proptest 1.x API the workspace's
//! property tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), range/tuple/`prop_oneof!`/
//! `prop_map`/[`collection::vec`] strategies, `any::<T>()`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! - Inputs are drawn from a deterministic SplitMix64 stream seeded
//!   from the test's name, so every run (and every `--jobs` level)
//!   exercises the identical case sequence. `PROPTEST_CASES` still
//!   overrides the case count.
//! - There is no shrinking. On failure the runner prints the complete
//!   failing input (all values are `Debug`) before propagating the
//!   panic, which is enough to turn a failure into an explicit
//!   regression test.
//! - `*.proptest-regressions` seed files are not replayed: upstream
//!   seeds encode positions in the upstream ChaCha stream and cannot be
//!   mapped onto this generator. The recorded shrunk inputs are instead
//!   encoded as explicit `#[test]` regression cases next to the
//!   property tests (see `tests/coherence_properties.rs` and
//!   `tests/measurement_properties.rs`).

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic entropy source for strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from an arbitrary label (e.g. the test name).
    #[must_use]
    pub fn from_label(label: &str) -> Self {
        // FNV-1a, then one mixing round so short labels diverge fast.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = Self { state: h };
        rng.next_u64();
        rng
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty draw");
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::{Debug, PhantomData, Range, TestRng};

    /// A generator of test-case values.
    ///
    /// Object-safe: combinators are `where Self: Sized` so
    /// `Box<dyn Strategy<Value = T>>` works (used by [`crate::prop_oneof!`]).
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            std::rc::Rc::new(self)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub type BoxedStrategy<T> = std::rc::Rc<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.as_ref().generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Self {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union over `options` (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// `any::<T>()` — the full-domain strategy for `T`.
    pub struct Any<T>(PhantomData<T>);

    /// Types with a full-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The full domain of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty range strategy");
                    let draw = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::{Range, TestRng};

    /// A `Vec` strategy with uniformly drawn length.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec`s of `element` values with length in `size`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// Cases after applying the `PROPTEST_CASES` override.
        #[must_use]
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (@block ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_label(concat!(file!(), "::", stringify!($name)));
            for case in 0..config.effective_cases() {
                let strategies = ($($strat,)+);
                let inputs = $crate::proptest!(@draw strategies, rng, $($arg)+);
                let repr = format!("{:?}", inputs);
                let ($($arg,)+) = inputs;
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || $body,
                ));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest stub: {} failed at case {case} with input {repr}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    (@draw $strats:ident, $rng:ident, $a:ident) => {
        ($crate::strategy::Strategy::generate(&$strats.0, &mut $rng),)
    };
    (@draw $strats:ident, $rng:ident, $a:ident $b:ident) => {
        (
            $crate::strategy::Strategy::generate(&$strats.0, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.1, &mut $rng),
        )
    };
    (@draw $strats:ident, $rng:ident, $a:ident $b:ident $c:ident) => {
        (
            $crate::strategy::Strategy::generate(&$strats.0, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.1, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.2, &mut $rng),
        )
    };
    (@draw $strats:ident, $rng:ident, $a:ident $b:ident $c:ident $d:ident) => {
        (
            $crate::strategy::Strategy::generate(&$strats.0, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.1, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.2, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.3, &mut $rng),
        )
    };
    (@draw $strats:ident, $rng:ident, $a:ident $b:ident $c:ident $d:ident $e:ident) => {
        (
            $crate::strategy::Strategy::generate(&$strats.0, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.1, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.2, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.3, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.4, &mut $rng),
        )
    };
    (@draw $strats:ident, $rng:ident, $a:ident $b:ident $c:ident $d:ident $e:ident $f:ident) => {
        (
            $crate::strategy::Strategy::generate(&$strats.0, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.1, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.2, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.3, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.4, &mut $rng),
            $crate::strategy::Strategy::generate(&$strats.5, &mut $rng),
        )
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in -5i32..5, x in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn maps_and_unions_compose(v in prop_oneof![
            (0u64..4).prop_map(|k| k * 8),
            (0u64..4).prop_map(|k| 1000 + k),
        ]) {
            prop_assert!(v % 8 == 0 || (1000..1004).contains(&v));
        }

        #[test]
        fn vectors_respect_length(v in collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn assume_discards(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = crate::TestRng::from_label("x");
        let mut b = crate::TestRng::from_label("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_label("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
