//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the deterministic subset of the `rand` 0.8 API the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over `f64` ranges. The generator is SplitMix64 —
//! a small, well-distributed PRNG that is more than adequate for the
//! measurement-noise and process-variation sampling done here. It is
//! *not* the upstream ChaCha-based `StdRng`, so streams differ from the
//! real crate; all consumers in this workspace seed explicitly and only
//! rely on determinism, not on a particular stream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A type that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws a sample in `[range.start, range.end)` from `rng`.
    fn sample_in(range: &Range<Self>, rng: &mut dyn RngCore) -> Self;
}

impl SampleUniform for f64 {
    fn sample_in(range: &Range<Self>, rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for u64 {
    fn sample_in(range: &Range<Self>, rng: &mut dyn RngCore) -> Self {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        // Modulo bias is negligible for the spans used here.
        range.start + rng.next_u64() % span
    }
}

impl SampleUniform for usize {
    fn sample_in(range: &Range<Self>, rng: &mut dyn RngCore) -> Self {
        let r = (range.start as u64)..(range.end as u64);
        u64::sample_in(&r, rng) as usize
    }
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample in the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_in(&range, self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0..1.0).to_bits(),
                b.gen_range(0.0..1.0).to_bits()
            );
        }
    }

    #[test]
    fn unit_range_stays_in_bounds_and_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn signed_range_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            sum += rng.gen_range(-1.0..1.0);
        }
        assert!(sum.abs() / 100_000.0 < 0.02);
    }
}
