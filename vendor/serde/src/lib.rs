//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on result structs so
//! they stay export-ready, but nothing in-tree performs serialization —
//! there is no `serde_json` (or any other format crate) in the
//! dependency graph. With the registry unreachable at build time, this
//! vendored crate supplies the marker traits and re-exports the no-op
//! derive macros from the companion `serde_derive` stub, keeping every
//! `#[derive(Serialize, Deserialize)]` compiling without pulling in the
//! real implementation.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
