//! Offline stand-in for the `criterion` crate.
//!
//! Registry access is unavailable in the build environment, so this
//! vendored crate provides the API surface the bench targets use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `b.iter`/`b.iter_batched`, `black_box`,
//! `Throughput`) backed by a deliberately small wall-clock harness: one
//! warm-up iteration, then `sample_size` timed iterations, with
//! mean/min/max printed per benchmark. It keeps `cargo bench` (and
//! bench targets compiled by `cargo test`) working offline; it does not
//! attempt criterion's statistical analysis. Pass `--quick` (or run
//! under `cargo test`, which passes `--test`) to run each benchmark
//! exactly once.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortizes setup (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

fn report(label: &str, throughput: Option<Throughput>, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {label}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(", {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!(", {:.0} B/s", n as f64 / mean.as_secs_f64())
        }
        None => String::new(),
    };
    println!(
        "bench {label}: mean {mean:?} (min {min:?}, max {max:?}, n={}{rate})",
        samples.len(),
    );
}

/// The harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub has no time budget.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; warm-up is a single iteration.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility (argument parsing is implicit).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn iters(&self) -> u64 {
        if quick_mode() {
            1
        } else {
            self.sample_size as u64
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters(),
            samples: Vec::new(),
        };
        f(&mut b);
        report(id, None, &b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_owned(),
            throughput: None,
        }
    }

    /// Final-report hook (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.parent.iters(),
            samples: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), self.throughput, &b.samples);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0;
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        // 3 samples unless quick mode trims to 1 (under `cargo test`
        // the harness binary sees no `--test` flag, so expect 3).
        assert!(calls == 3 || calls == 1);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default().sample_size(2);
        let mut seen = Vec::new();
        c.bench_function("batched", |b| {
            b.iter_batched(|| 41, |x| seen.push(x + 1), BatchSize::SmallInput)
        });
        assert!(seen.iter().all(|&v| v == 42));
    }

    #[test]
    fn groups_report_throughput() {
        let mut c = Criterion::default().sample_size(1);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
