//! # piton — facade for the Piton power/energy characterization reproduction
//!
//! This crate re-exports the whole workspace behind one dependency, and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`).
//!
//! The workspace reproduces, in simulation, the HPCA 2018 paper *Power
//! and Energy Characterization of an Open Source 25-Core Manycore
//! Processor* (McKeown et al.): a cycle-level model of the Piton chip, a
//! calibrated power/energy/thermal model, a virtual lab bench, the
//! paper's workloads, and an experiment harness that regenerates every
//! table and figure of the evaluation. See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for paper-versus-measured results.
//!
//! # Examples
//!
//! ```
//! use piton::board::system::PitonSystem;
//!
//! let mut system = PitonSystem::reference_chip_2();
//! let idle = system.measure_idle_power();
//! // Table V: idle power at 500.05 MHz is ~2015 mW.
//! assert!((idle.mean.as_mw() - 2015.3).abs() < 30.0);
//! ```

#![forbid(unsafe_code)]

pub use piton_arch as arch;
pub use piton_board as board;
pub use piton_core as characterization;
pub use piton_obs as obs;
pub use piton_power as power;
pub use piton_sim as sim;
pub use piton_workloads as workloads;
